"""The C-Extension problem object and the brute-force oracle."""

import pytest

from repro.constraints.parser import parse_cc, parse_dc
from repro.core.problem import CExtensionProblem, brute_force_decision
from repro.errors import ConstraintError
from repro.relational.relation import Relation


def _problem(ccs=(), dcs=(), ages=(30, 40)):
    r1 = Relation.from_columns(
        {
            "pid": list(range(len(ages))),
            "Age": list(ages),
            "Rel": ["Owner"] * len(ages),
        },
        key="pid",
    )
    r2 = Relation.from_columns(
        {"hid": [1, 2], "Area": ["Chicago", "NYC"]}, key="hid"
    )
    return CExtensionProblem(r1=r1, r2=r2, fk_column="hid", ccs=ccs, dcs=dcs)


class TestCheck:
    def test_valid_assignment(self):
        problem = _problem(
            ccs=(parse_cc("|Rel == 'Owner' & Area == 'Chicago'| = 1"),),
            dcs=(parse_dc("not(t1.Rel == 'Owner' & t2.Rel == 'Owner')"),),
        )
        assert problem.check([1, 2])

    def test_cc_violation_detected(self):
        problem = _problem(
            ccs=(parse_cc("|Rel == 'Owner' & Area == 'Chicago'| = 1"),)
        )
        assert not problem.check([1, 1])  # two owners in Chicago

    def test_dc_violation_detected(self):
        problem = _problem(
            dcs=(parse_dc("not(t1.Rel == 'Owner' & t2.Rel == 'Owner')"),)
        )
        assert not problem.check([1, 1])
        assert problem.check([1, 2])

    def test_r2_without_key_rejected(self):
        r1 = Relation.from_columns({"pid": [0]}, key="pid")
        r2 = Relation.from_columns({"hid": [1]})
        with pytest.raises(ConstraintError):
            CExtensionProblem(r1=r1, r2=r2, fk_column="hid")


class TestBruteForce:
    def test_finds_witness(self):
        problem = _problem(
            ccs=(parse_cc("|Rel == 'Owner' & Area == 'Chicago'| = 1"),),
            dcs=(parse_dc("not(t1.Rel == 'Owner' & t2.Rel == 'Owner')"),),
        )
        witness = brute_force_decision(problem)
        assert witness is not None
        assert problem.check(witness)

    def test_detects_unsatisfiable(self):
        # Three pairwise-conflicting owners, two houses.
        problem = _problem(
            dcs=(parse_dc("not(t1.Rel == 'Owner' & t2.Rel == 'Owner')"),),
            ages=(30, 40, 50),
        )
        assert brute_force_decision(problem) is None

    def test_space_limit_enforced(self):
        problem = _problem(ages=tuple(range(40)))
        with pytest.raises(ConstraintError):
            brute_force_decision(problem, limit=100)
