"""Logging instrumentation and solver resource limits."""

import logging

import numpy as np
import pytest

from repro import CExtensionSolver
from repro.solver.branch_bound import branch_and_bound
from repro.solver.model import Model
from repro.solver.result import SolveStatus
from repro.solver.simplex import simplex_solve


class TestLogging:
    def test_solver_logs_phase_progress(
        self, caplog, paper_r1, paper_r2, paper_ccs, paper_dcs
    ):
        with caplog.at_level(logging.INFO, logger="repro.core.synthesizer"):
            CExtensionSolver().solve(
                paper_r1, paper_r2, fk_column="hid",
                ccs=paper_ccs, dcs=paper_dcs,
            )
        messages = " ".join(record.message for record in caplog.records)
        assert "solving C-Extension" in messages
        assert "phase I done" in messages
        assert "phase II done" in messages


class TestSolverLimits:
    def test_simplex_iteration_limit(self):
        # A feasible LP with the iteration budget strangled.
        a = np.asarray([[1.0, 1.0], [1.0, 0.0]])
        b = np.asarray([4.0, 1.0])
        result = simplex_solve(
            a, b, [">=", ">="], np.asarray([2.0, 3.0]),
            np.zeros(2), np.full(2, np.inf), max_iterations=1,
        )
        assert result.status is SolveStatus.ITERATION_LIMIT

    def test_branch_and_bound_node_limit(self):
        model = Model()
        xs = [
            model.add_variable(f"x{i}", upper=1.0, integer=True, objective=-1)
            for i in range(6)
        ]
        model.add_constraint(
            {x.index: 2.0 for x in xs}, "<=", 5.0
        )
        # One node is not enough to certify the incumbent: the truncated
        # search reports a limit status (or FEASIBLE with an incumbent),
        # never a spurious INFEASIBLE/OPTIMAL claim.
        result = branch_and_bound(model, max_nodes=1)
        assert result.status in (
            SolveStatus.FEASIBLE, SolveStatus.ITERATION_LIMIT
        )

    def test_branch_and_bound_time_limit_returns_incumbent(self):
        model = Model()
        xs = [
            model.add_variable(f"x{i}", upper=1.0, integer=True, objective=-1)
            for i in range(6)
        ]
        model.add_constraint({x.index: 2.0 for x in xs}, "<=", 5.0)
        # An already-expired deadline still yields an honest limit status.
        result = branch_and_bound(model, time_limit=0.0)
        assert result.status in (
            SolveStatus.FEASIBLE, SolveStatus.ITERATION_LIMIT
        )

    def test_branch_and_bound_gap_accepts_near_optimal(self):
        model = Model()
        xs = [
            model.add_variable(f"x{i}", upper=1.0, integer=True, objective=-1)
            for i in range(6)
        ]
        model.add_constraint({x.index: 2.0 for x in xs}, "<=", 5.0)
        exact = branch_and_bound(model)
        loose = branch_and_bound(model, mip_gap=0.5)
        assert exact.ok and loose.ok
        # The loose solve may stop at any solution within 50% of optimal.
        assert loose.objective <= exact.objective * (1 - 0.5) + 1e-9
        assert loose.nodes <= exact.nodes


class TestCsvErrorPaths:
    def test_non_integer_value_reported_with_location(self, tmp_path):
        from repro.errors import SchemaError
        from repro.relational.csvio import read_csv
        from repro.relational.relation import Relation

        reference = Relation.from_columns({"a": [1]}, key="a")
        path = tmp_path / "bad.csv"
        path.write_text("a\nnot_a_number\n")
        with pytest.raises(SchemaError) as excinfo:
            read_csv(path, reference.schema)
        assert ":2:" in str(excinfo.value)

    def test_ragged_row_reported(self, tmp_path):
        from repro.errors import SchemaError
        from repro.relational.csvio import read_csv
        from repro.relational.relation import Relation

        reference = Relation.from_columns({"a": [1], "b": [2]})
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(SchemaError):
            read_csv(path, reference.schema)

    def test_from_rows_arity_validated(self):
        from repro.errors import SchemaError
        from repro.relational.relation import Relation
        from repro.relational.schema import ColumnSpec, Schema
        from repro.relational.types import Dtype

        schema = Schema([ColumnSpec("a", Dtype.INT), ColumnSpec("b", Dtype.INT)])
        with pytest.raises(SchemaError):
            Relation.from_rows(schema, [(1,)])
