"""The repro-synth command-line interface."""

from pathlib import Path

import pytest

from repro.cli import dump_constraints, load_constraints, main
from repro.constraints.parser import parse_cc, parse_dc
from repro.errors import ParseError


class TestConstraintsFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "constraints.txt"
        ccs = [
            parse_cc("|Rel == 'Owner' & Area == 'X'| = 4"),
            parse_cc("|Age in [0, 10] & Area == 'X' "
                     "or Age in [60, 99] & Area == 'Y'| = 5"),
        ]
        dcs = [
            parse_dc("not(t1.Rel == 'Owner' & t2.Rel == 'Owner')"),
            parse_dc("not(t1.Rel == 'Owner' & t2.Age < t1.Age - 50)"),
        ]
        written = dump_constraints(path, ccs, dcs)
        assert written == 2
        loaded_ccs, loaded_dcs = load_constraints(path)
        assert len(loaded_ccs) == 2 and len(loaded_dcs) == 2
        assert loaded_ccs[0].target == 4
        assert not loaded_ccs[1].is_conjunctive

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("# comment\n\ncc: |Age in [0, 5] & Area == 'X'| = 1\n")
        ccs, dcs = load_constraints(path)
        assert len(ccs) == 1 and not dcs

    def test_bad_prefix_rejected(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("constraint: whatever\n")
        with pytest.raises(ParseError):
            load_constraints(path)

    def test_parse_error_carries_location(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("cc: not a cc\n")
        with pytest.raises(ParseError) as excinfo:
            load_constraints(path)
        assert ":1:" in str(excinfo.value)


class TestPipelineCommands:
    def test_generate_solve_evaluate(self, tmp_path, capsys):
        data_dir = tmp_path / "data"
        out_dir = tmp_path / "out"

        assert main([
            "generate", "--out", str(data_dir),
            "--households", "60", "--areas", "4",
            "--num-ccs", "20", "--seed", "3",
        ]) == 0
        assert (data_dir / "persons.csv").exists()
        assert (data_dir / "housing.csv").exists()
        assert (data_dir / "constraints.txt").exists()

        assert main([
            "solve",
            "--r1", str(data_dir / "persons.csv"),
            "--r2", str(data_dir / "housing.csv"),
            "--fk", "hid",
            "--r1-key", "pid", "--r2-key", "hid",
            "--constraints", str(data_dir / "constraints.txt"),
            "--out", str(out_dir),
        ]) == 0
        assert (out_dir / "r1_hat.csv").exists()
        assert (out_dir / "r2_hat.csv").exists()
        solve_output = capsys.readouterr().out
        assert "DC error 0.0000" in solve_output

        assert main([
            "evaluate",
            "--r1", str(out_dir / "r1_hat.csv"),
            "--r2", str(out_dir / "r2_hat.csv"),
            "--fk", "hid",
            "--r1-key", "pid", "--r2-key", "hid",
            "--constraints", str(data_dir / "constraints.txt"),
        ]) == 0
        eval_output = capsys.readouterr().out
        assert "dc_error: 0.0000" in eval_output

    def test_missing_file_reports_error(self, tmp_path, capsys):
        code = main([
            "solve",
            "--r1", str(tmp_path / "absent.csv"),
            "--r2", str(tmp_path / "absent2.csv"),
            "--fk", "hid",
            "--r2-key", "hid",
            "--constraints", str(tmp_path / "absent3.txt"),
            "--out", str(tmp_path / "out"),
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_csv_ref_reports_error_not_traceback(
        self, tmp_path, capsys
    ):
        # A spec whose csv ref resolves outside the spec directory to
        # something unreadable (here: a directory) must exit with the
        # CLI's clean error contract, not a raw OSError traceback.
        spec_dir = tmp_path / "specs"
        spec_dir.mkdir()
        (tmp_path / "outside").mkdir()
        (spec_dir / "bad.toml").write_text(
            'name = "bad"\n'
            'fact_table = "r1"\n'
            "[[relations]]\n"
            'name = "r1"\n'
            'key = "id"\n'
            'csv = "../outside"\n'
            "[[relations]]\n"
            'name = "r2"\n'
            'key = "id"\n'
            'csv = "missing.csv"\n'
            "[[edges]]\n"
            'child = "r1"\n'
            'column = "r2_id"\n'
            'parent = "r2"\n'
        )
        code = main([
            "solve",
            "--spec", str(spec_dir / "bad.toml"),
            "--out", str(tmp_path / "out"),
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "relation 'r1'" in err
        assert "Traceback" not in err


class TestCsvInference:
    def test_read_csv_infer(self, tmp_path):
        from repro.relational.csvio import read_csv_infer
        from repro.relational.types import Dtype

        path = tmp_path / "t.csv"
        path.write_text("id,name,score\n1,alice,10\n2,bob,-3\n")
        relation = read_csv_infer(path, key="id")
        assert relation.schema.dtype("id") is Dtype.INT
        assert relation.schema.dtype("name") is Dtype.STR
        assert relation.schema.dtype("score") is Dtype.INT
        assert relation.schema.key == "id"
        assert relation.row(1) == {"id": 2, "name": "bob", "score": -3}
