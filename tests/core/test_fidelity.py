"""Distribution-fidelity measures (TVD over marginals)."""

import pytest

from repro.bench.fidelity import fidelity_report, marginal_tvd
from repro.errors import SchemaError
from repro.relational.relation import Relation


def _view(values):
    return Relation.from_columns({"Rel": values})


class TestMarginalTvd:
    def test_identical_views(self):
        a = _view(["Owner", "Owner", "Child"])
        assert marginal_tvd(a, a, ["Rel"]) == 0.0

    def test_disjoint_support(self):
        a = _view(["Owner"])
        b = _view(["Child"])
        assert marginal_tvd(a, b, ["Rel"]) == 1.0

    def test_half_distance(self):
        a = _view(["Owner", "Owner"])
        b = _view(["Owner", "Child"])
        assert marginal_tvd(a, b, ["Rel"]) == pytest.approx(0.5)

    def test_scale_invariance(self):
        a = _view(["Owner", "Child"])
        b = _view(["Owner", "Owner", "Child", "Child"])
        assert marginal_tvd(a, b, ["Rel"]) == 0.0

    def test_missing_column_rejected(self):
        a = _view(["Owner"])
        b = Relation.from_columns({"Other": ["x"]})
        with pytest.raises(SchemaError):
            marginal_tvd(a, b, ["Rel"])

    def test_empty_views(self):
        empty = Relation.from_columns({"Rel": []})
        assert marginal_tvd(empty, empty, ["Rel"]) == 0.0
        assert marginal_tvd(empty, _view(["Owner"]), ["Rel"]) == 1.0


class TestFidelityReport:
    def test_multiple_marginals(self):
        a = Relation.from_columns(
            {"Rel": ["Owner", "Child"], "Area": ["X", "Y"]}
        )
        report = fidelity_report(a, a, [["Rel"], ["Rel", "Area"]])
        assert report[("Rel",)] == 0.0
        assert report[("Rel", "Area")] == 0.0


class TestSynthesisFidelity:
    def test_synthesized_view_tracks_ground_truth(
        self, census_small, census_good_ccs
    ):
        """Constrained marginals transfer almost perfectly to the output."""
        from repro import CExtensionSolver
        from repro.datagen import good_dcs

        result = CExtensionSolver().solve(
            census_small.persons_masked,
            census_small.housing,
            fk_column="hid",
            ccs=census_good_ccs,
            dcs=good_dcs(),
        )
        truth = census_small.ground_truth_join()
        synthesized = result.join_view()
        # R1-only marginals are identical by construction.
        assert marginal_tvd(synthesized, truth, ["Rel"]) == 0.0
        # The CC-constrained joint marginal stays close.
        joint = marginal_tvd(synthesized, truth, ["Rel", "Area"])
        assert joint < 0.5
