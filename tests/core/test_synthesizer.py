"""The end-to-end CExtensionSolver."""

import pytest

from repro import CExtensionSolver, SolverConfig
from repro.errors import SchemaError
from repro.relational.relation import Relation


class TestRunningExample:
    def test_zero_errors(self, paper_r1, paper_r2, paper_ccs, paper_dcs):
        result = CExtensionSolver().solve(
            paper_r1, paper_r2, fk_column="hid", ccs=paper_ccs, dcs=paper_dcs
        )
        errors = result.report.errors
        assert errors.mean_cc_error == 0.0
        assert errors.dc_error == 0.0

    def test_fk_column_present_is_ignored(
        self, paper_r1, paper_r2, paper_ccs, paper_dcs
    ):
        from repro.relational.schema import ColumnSpec
        from repro.relational.types import Dtype

        with_fk = paper_r1.with_column(
            ColumnSpec("hid", Dtype.INT), [1] * len(paper_r1)
        )
        result = CExtensionSolver().solve(
            with_fk, paper_r2, fk_column="hid", ccs=paper_ccs, dcs=paper_dcs
        )
        assert result.report.errors.dc_error == 0.0

    def test_join_view_roundtrip(self, paper_r1, paper_r2, paper_ccs, paper_dcs):
        result = CExtensionSolver().solve(
            paper_r1, paper_r2, fk_column="hid", ccs=paper_ccs, dcs=paper_dcs
        )
        view = result.join_view()
        assert len(view) == len(paper_r1)
        assert "Area" in view.schema

    def test_timings_recorded(self, paper_r1, paper_r2, paper_ccs, paper_dcs):
        result = CExtensionSolver().solve(
            paper_r1, paper_r2, fk_column="hid", ccs=paper_ccs, dcs=paper_dcs
        )
        report = result.report
        assert report.phase1_seconds > 0
        assert report.phase2_seconds > 0
        assert report.total_seconds == pytest.approx(
            report.phase1_seconds + report.phase2_seconds
        )
        assert set(report.breakdown()) == {"phase1", "phase2"}


class TestConfig:
    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            SolverConfig(backend="gurobi")

    def test_invalid_marginals_rejected(self):
        with pytest.raises(ValueError):
            SolverConfig(marginals="sometimes")

    def test_native_backend_small_instance(
        self, paper_r1, paper_r2, paper_dcs
    ):
        from repro.constraints.parser import parse_cc

        ccs = [parse_cc("|Rel == 'Owner' & Area == 'NYC'| = 2")]
        result = CExtensionSolver(SolverConfig(backend="native")).solve(
            paper_r1, paper_r2, fk_column="hid", ccs=ccs, dcs=paper_dcs
        )
        assert result.report.errors.mean_cc_error == 0.0
        assert result.report.errors.dc_error == 0.0

    def test_evaluation_can_be_disabled(
        self, paper_r1, paper_r2, paper_ccs, paper_dcs
    ):
        result = CExtensionSolver(SolverConfig(evaluate=False)).solve(
            paper_r1, paper_r2, fk_column="hid", ccs=paper_ccs, dcs=paper_dcs
        )
        assert result.report.errors is None

    def test_force_ilp_config(self, paper_r1, paper_r2, paper_ccs, paper_dcs):
        result = CExtensionSolver(SolverConfig(force_ilp=True)).solve(
            paper_r1, paper_r2, fk_column="hid", ccs=paper_ccs, dcs=paper_dcs
        )
        assert result.phase1.s1_indices == []
        assert result.report.errors.dc_error == 0.0


class TestValidation:
    def test_r2_needs_key(self, paper_r1):
        keyless = Relation.from_columns({"hid": [1], "Area": ["x"]})
        with pytest.raises(SchemaError):
            CExtensionSolver().solve(paper_r1, keyless, fk_column="hid")

    def test_unknown_cc_attribute_rejected(self, paper_r1, paper_r2):
        from repro.constraints.parser import parse_cc
        from repro.errors import ConstraintError

        bad = [parse_cc("|Height == 7 & Area == 'Chicago'| = 1")]
        with pytest.raises(ConstraintError):
            CExtensionSolver().solve(
                paper_r1, paper_r2, fk_column="hid", ccs=bad
            )

    def test_no_constraints_still_completes(self, paper_r1, paper_r2):
        result = CExtensionSolver().solve(paper_r1, paper_r2, fk_column="hid")
        assert len(result.r1_hat) == len(paper_r1)
        assert set(result.r1_hat.column("hid")) <= set(
            result.r2_hat.column("hid")
        )
