"""The benchmark harness and its reporting helpers."""

import pytest

from repro.bench import (
    ExperimentRow,
    error_histogram,
    render_breakdown,
    render_series,
    render_table,
    run_baseline,
    run_hybrid,
)
from repro.datagen import good_dcs


class TestRunners:
    def test_run_hybrid_row(self, census_small, census_good_ccs):
        row = run_hybrid(census_small, census_good_ccs, good_dcs(), scale="1x")
        assert row.algorithm == "hybrid"
        assert row.scale == "1x"
        assert row.dc_error == 0.0
        assert row.total_seconds == pytest.approx(
            row.phase1_seconds + row.phase2_seconds
        )
        assert len(row.per_cc_errors) == len(census_good_ccs)

    def test_run_baseline_row(self, census_small, census_good_ccs):
        row = run_baseline(census_small, census_good_ccs, good_dcs())
        assert row.algorithm == "baseline"
        marg = run_baseline(
            census_small, census_good_ccs, good_dcs(), with_marginals=True
        )
        assert marg.algorithm == "baseline+marginals"

    def test_as_dict_columns(self, census_small, census_good_ccs):
        row = run_hybrid(census_small, census_good_ccs, [], scale="x")
        d = row.as_dict()
        assert {"algorithm", "scale", "median_cc_error", "dc_error"} <= set(d)


class TestReporting:
    def _row(self, **kwargs):
        return ExperimentRow(algorithm="hybrid", **kwargs)

    def test_render_table(self):
        rows = [self._row(scale="1x", dc_error=0.0, median_cc_error=0.0)]
        text = render_table("My Table", rows)
        assert "My Table" in text
        assert "hybrid" in text
        assert "dc_error" in text

    def test_render_series(self):
        text = render_series("S", {"a": [(1, 0.5), (2, 1.0)]})
        assert "x=1" in text and "y=1.0000s" in text

    def test_render_breakdown_percentages(self):
        text = render_breakdown("B", {"ilp": 3.0, "coloring": 1.0})
        assert "75.00%" in text and "25.00%" in text

    def test_error_histogram(self):
        histogram = error_histogram([0.0, 0.0, 0.02, 0.3, 2.0])
        assert histogram["exact=0"] == 2
        assert histogram["[0.25, 0.5)"] == 1
        assert histogram["[1, inf)"] == 1
        assert sum(
            v for k, v in histogram.items() if k != "exact=0"
        ) == 5


class TestParallelConfig:
    def test_parallel_workers_rejects_negative(self):
        from repro.core.config import SolverConfig

        with pytest.raises(ValueError):
            SolverConfig(parallel_workers=-1)

    def test_parallel_solve_matches_sequential_guarantees(
        self, census_small, census_good_ccs
    ):
        from repro import CExtensionSolver, SolverConfig

        result = CExtensionSolver(SolverConfig(parallel_workers=2)).solve(
            census_small.persons_masked,
            census_small.housing,
            fk_column="hid",
            ccs=census_good_ccs,
            dcs=good_dcs(),
        )
        assert result.report.errors.dc_error == 0.0
        assert result.report.errors.max_cc_error == 0.0
