"""Parallel snowflake traversal: equivalence, batching, worker protocol.

The scheduler's contract is that ``workers=N`` output is *byte-identical*
to the sequential traversal — same relations, same schemas, same column
arrays — for any snowflake shape and any per-edge strategy mix.  The
hypothesis test below drives that across random schemas; the batching
tests pin the conflict rules the guarantee rests on.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import SolverConfig
from repro.core.parallel_snowflake import (
    edge_payload,
    solve_edge,
    solve_edge_payload,
)
from repro.core.snowflake import EdgeConstraints, SnowflakeSynthesizer
from repro.relational.database import Database
from repro.relational.relation import Relation


def assert_databases_equal(a: Database, b: Database) -> None:
    """Assert ``Database.identical_to``, pinpointing the first mismatch."""
    if a.identical_to(b):
        return
    assert a.relation_names == b.relation_names
    assert a.foreign_keys == b.foreign_keys
    for name in a.relation_names:
        ra, rb = a.relation(name), b.relation(name)
        assert ra.schema == rb.schema, f"{name}: schemas differ"
        for column in ra.schema.names:
            assert np.array_equal(ra.column(column), rb.column(column)), (
                f"{name}.{column}: values differ"
            )
    raise AssertionError("identical_to is stricter than the detailed scan")


# ----------------------------------------------------------------------
# Random snowflake workloads
# ----------------------------------------------------------------------

ARMS = st.lists(
    st.tuples(
        st.integers(min_value=4, max_value=9),    # dimension rows
        st.integers(min_value=2, max_value=4),    # sub-dimension keys
        st.booleans(),                            # arm has a sub-dimension
        st.sampled_from(["coloring", "capacity", "cc", "dc"]),
    ),
    min_size=1,
    max_size=3,
)


def _build_workload(arms, seed):
    """A fact table with one FK per arm; each arm optionally one hop more."""
    rng = np.random.default_rng(seed)
    db = Database()
    db.add_relation(
        "F",
        Relation.from_columns(
            {
                "fid": list(range(8)),
                "W": rng.integers(1, 4, 8).tolist(),
            },
            key="fid",
        ),
    )
    constraints = {}
    for i, (dim_rows, sub_keys, has_sub, flavor) in enumerate(arms):
        dim, sub = f"D{i}", f"S{i}"
        db.add_relation(
            dim,
            Relation.from_columns(
                {
                    f"d{i}": list(range(dim_rows)),
                    f"X{i}": rng.integers(0, 3, dim_rows).tolist(),
                },
                key=f"d{i}",
            ),
        )
        db.add_foreign_key("F", f"fk_d{i}", dim)
        if not has_sub:
            continue
        db.add_relation(
            sub,
            Relation.from_columns(
                {
                    f"s{i}": list(range(sub_keys)),
                    f"C{i}": [f"c{j % 2}" for j in range(sub_keys)],
                },
                key=f"s{i}",
            ),
        )
        db.add_foreign_key(dim, f"fk_s{i}", sub)
        edge = (dim, f"fk_s{i}")
        if flavor == "capacity":
            constraints[edge] = EdgeConstraints(
                capacity=max(2, dim_rows // sub_keys + 1)
            )
        elif flavor == "cc":
            from repro.constraints.parser import parse_cc

            constraints[edge] = EdgeConstraints(
                ccs=[parse_cc(f"|X{i} == 1 & C{i} == 'c0'| = 2")]
            )
        elif flavor == "dc":
            from repro.constraints.parser import parse_dc

            constraints[edge] = EdgeConstraints(
                dcs=[parse_dc(f"not(t1.X{i} == 0 & t2.X{i} == 2)")]
            )
    return db, constraints


class TestParallelEquivalence:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(arms=ARMS, seed=st.integers(min_value=0, max_value=2**16))
    def test_workers_output_byte_identical(self, arms, seed):
        """workers=2 equals workers=1 on random snowflake workloads."""
        db, constraints = _build_workload(arms, seed)
        synth = SnowflakeSynthesizer()
        sequential = synth.solve(db, "F", constraints)
        parallel = synth.solve(db, "F", constraints, workers=2)
        assert_databases_equal(sequential.database, parallel.database)
        assert [fk for fk, _ in sequential.steps] == [
            fk for fk, _ in parallel.steps
        ]
        # Transactionality: neither run touched the input.
        assert "fk_d0" not in db.relation("F").schema

    def test_serialize_escape_hatch_matches_parallel_output(self):
        arms = [(6, 3, True, "dc"), (7, 2, True, "capacity")]
        db, constraints = _build_workload(arms, seed=5)
        for edge in list(constraints):
            constraints[edge] = EdgeConstraints(
                ccs=constraints[edge].ccs,
                dcs=constraints[edge].dcs,
                capacity=constraints[edge].capacity,
                serialize=True,
            )
        synth = SnowflakeSynthesizer()
        sequential = synth.solve(db, "F", constraints)
        parallel = synth.solve(db, "F", constraints, workers=2)
        assert_databases_equal(sequential.database, parallel.database)

    def test_config_workers_knob_is_the_default(self):
        arms = [(5, 2, True, "coloring"), (6, 3, True, "cc")]
        db, constraints = _build_workload(arms, seed=9)
        sequential = SnowflakeSynthesizer().solve(db, "F", constraints)
        configured = SnowflakeSynthesizer(SolverConfig(workers=2)).solve(
            db, "F", constraints
        )
        assert_databases_equal(sequential.database, configured.database)


class TestWorkerProtocol:
    def test_payload_round_trip_matches_in_process_solve(self):
        """The worker's rebuilt-relation solve equals the direct solve."""
        from repro.constraints.parser import parse_dc

        rng = np.random.default_rng(2)
        extended = Relation.from_columns(
            {
                "did": list(range(12)),
                "X": rng.integers(0, 3, 12).tolist(),
            },
            key="did",
        )
        parent = Relation.from_columns(
            {"sid": [0, 1, 2], "C": ["a", "b", "a"]}, key="sid"
        )
        constraints = EdgeConstraints(
            dcs=[parse_dc("not(t1.X == 0 & t2.X == 2)")]
        )
        config = SolverConfig()
        direct = solve_edge(extended, parent, "fk", constraints, config)
        shipped = solve_edge_payload(
            edge_payload(extended, parent, "fk", constraints, config)
        )
        assert np.array_equal(
            direct.r1_hat.column("fk"), shipped.r1_hat.column("fk")
        )
        assert direct.r2_hat.schema == shipped.r2_hat.schema
        for column in direct.r2_hat.schema.names:
            assert np.array_equal(
                direct.r2_hat.column(column), shipped.r2_hat.column(column)
            )

    def test_payload_ships_columns_not_relations(self):
        relation = Relation.from_columns({"k": [1, 2], "A": [3, 4]}, key="k")
        payload = edge_payload(
            relation, relation, "fk", EdgeConstraints(), SolverConfig()
        )
        schema, columns = payload[0], payload[1]
        assert schema == relation.schema
        assert set(columns) == {"k", "A"}
        assert all(isinstance(arr, np.ndarray) for arr in columns.values())


class TestConflictFreeBatching:
    def _db(self, relations, fks):
        db = Database()
        for name in relations:
            db.add_relation(
                name,
                Relation.from_columns({f"{name}_k": [1, 2]}, key=f"{name}_k"),
            )
        for child, column, parent in fks:
            db.add_foreign_key(child, column, parent)
        return db

    def test_never_coschedules_edges_sharing_a_relation(self):
        """Edges sharing a child or parent always land in different
        batches, whatever the layer composition."""
        db = self._db(
            ["F", "A", "B", "C"],
            [
                ("F", "a", "A"),   # shares child F with the next two
                ("F", "b", "B"),
                ("F", "c", "C"),
                ("A", "x", "C"),   # shares parent C with F.c
                ("B", "y", "C"),   # shares parent C with both
            ],
        )
        for layer in db.bfs_edge_layers("F"):
            for batch in db.conflict_free_batches(layer, set()):
                relations = [
                    rel for fk in batch for rel in (fk.child, fk.parent)
                ]
                assert len(relations) == len(set(relations)), (
                    f"batch {batch} co-schedules a shared relation"
                )

    def test_disjoint_edges_share_a_batch(self):
        db = self._db(
            ["F", "A", "B", "X", "Y"],
            [
                ("F", "a", "A"),
                ("F", "b", "B"),
                ("A", "x", "X"),
                ("B", "y", "Y"),
            ],
        )
        layers = db.bfs_edge_layers("F")
        fact_batches = db.conflict_free_batches(layers[0], set())
        assert [len(b) for b in fact_batches] == [1, 1]  # shared child F
        completed = {("F", "a"), ("F", "b")}
        arm_batches = db.conflict_free_batches(layers[1], completed)
        assert [len(b) for b in arm_batches] == [2]      # fully disjoint

    def test_read_closure_conflict_serializes(self):
        """An edge whose extended view *reads* a relation another edge
        writes must not share its batch — even though their child/parent
        pairs are disjoint."""
        db = self._db(
            ["F", "R", "C2", "P", "Q"],
            [
                ("F", "r", "R"),
                ("F", "c", "C2"),
                ("C2", "w", "R"),   # C2's view reaches R once completed
                ("R", "u", "P"),    # writes R (adds the imputed column)
                ("C2", "v", "Q"),
            ],
        )
        completed = {("F", "r"), ("F", "c"), ("C2", "w")}
        layer = [
            fk
            for fk in db.foreign_keys
            if (fk.child, fk.column) in {("R", "u"), ("C2", "v")}
        ]
        batches = db.conflict_free_batches(layer, completed)
        assert [len(b) for b in batches] == [1, 1]
        # Without the completed hop into R the same two edges are
        # independent and co-schedule.
        batches = db.conflict_free_batches(
            layer, {("F", "r"), ("F", "c")}
        )
        assert [len(b) for b in batches] == [2]

    def test_serialize_forces_solo_batches(self):
        db = self._db(
            ["F", "A", "B", "X", "Y"],
            [
                ("F", "a", "A"),
                ("F", "b", "B"),
                ("A", "x", "X"),
                ("B", "y", "Y"),
            ],
        )
        layer = db.bfs_edge_layers("F")[1]
        completed = {("F", "a"), ("F", "b")}
        batches = db.conflict_free_batches(
            layer, completed, serialize={("A", "x")}
        )
        assert [len(b) for b in batches] == [1, 1]

    def test_batches_are_contiguous_in_bfs_order(self):
        db = self._db(
            ["F", "A", "B", "C"],
            [("F", "a", "A"), ("F", "b", "B"), ("F", "c", "C")],
        )
        layer = db.bfs_edge_layers("F")[0]
        batches = db.conflict_free_batches(layer, set())
        flattened = [fk for batch in batches for fk in batch]
        assert flattened == layer


class TestExampleSpecs:
    @pytest.mark.parametrize("workers", [4])
    def test_example_specs_byte_identical_under_workers(self, workers):
        """Acceptance: workers=4 equals sequential on every example spec."""
        from pathlib import Path

        from repro.spec import load_spec, synthesize

        specs = sorted(
            (Path(__file__).parents[2] / "examples" / "specs").glob("*.toml")
        )
        assert specs
        for path in specs:
            spec = load_spec(path)
            sequential = synthesize(spec.with_options(workers=0))
            parallel = synthesize(spec.with_options(workers=workers))
            assert_databases_equal(sequential.database, parallel.database)
