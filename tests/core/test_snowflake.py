"""The snowflake-schema extension (Example 5.6)."""

import pytest

from repro.constraints.parser import parse_cc, parse_dc
from repro.core.snowflake import EdgeConstraints, SnowflakeSynthesizer
from repro.errors import ReproError, SchemaError
from repro.relational.database import Database
from repro.relational.join import fk_join
from repro.relational.relation import Relation


def _university() -> Database:
    """Example 5.6's Students → {Majors, Courses}, Majors → Departments."""
    db = Database()
    db.add_relation(
        "Students",
        Relation.from_columns(
            {
                "sid": list(range(1, 13)),
                "Year": [1, 2, 3, 4] * 3,
            },
            key="sid",
        ),
    )
    db.add_relation(
        "Majors",
        Relation.from_columns(
            {"mid": [1, 2, 3], "MName": ["CS", "Math", "Bio"]}, key="mid"
        ),
    )
    db.add_relation(
        "Courses",
        Relation.from_columns(
            {"cid": [1, 2], "Credits": [3, 4]}, key="cid"
        ),
    )
    db.add_relation(
        "Departments",
        Relation.from_columns(
            {"did": [1, 2], "DName": ["Engineering", "Science"]}, key="did"
        ),
    )
    db.add_foreign_key("Students", "major_id", "Majors")
    db.add_foreign_key("Students", "course_id", "Courses")
    db.add_foreign_key("Majors", "dept_id", "Departments")
    return db


class TestSnowflake:
    def test_all_fks_completed(self):
        db = _university()
        result = SnowflakeSynthesizer().solve(db, "Students", {})
        students = result.database.relation("Students")
        assert "major_id" in students.schema
        assert "course_id" in students.schema
        assert "dept_id" in result.database.relation("Majors").schema
        assert len(result.steps) == 3

    def test_fk_values_are_valid_references(self):
        db = _university()
        out = SnowflakeSynthesizer().solve(db, "Students", {}).database
        # joining must not raise
        fk_join(out.relation("Students"), out.relation("Majors"), "major_id")
        fk_join(out.relation("Majors"), out.relation("Departments"),
                "dept_id")

    def test_edge_constraints_applied(self):
        db = _university()
        constraints = {
            ("Students", "major_id"): EdgeConstraints(
                ccs=[parse_cc("|Year == 1 & MName == 'CS'| = 3")]
            ),
        }
        result = SnowflakeSynthesizer().solve(db, "Students", constraints)
        out = result.database
        view = fk_join(out.relation("Students"), out.relation("Majors"),
                       "major_id")
        assert view.count(
            constraints[("Students", "major_id")].ccs[0].predicate
        ) == 3

    def test_multi_hop_cc_uses_accumulated_join(self):
        """Step-2 CCs may reference Majors attributes (paper's example)."""
        db = _university()
        constraints = {
            ("Students", "major_id"): EdgeConstraints(
                ccs=[parse_cc("|Year == 1 & MName == 'CS'| = 3")]
            ),
            ("Students", "course_id"): EdgeConstraints(
                ccs=[parse_cc("|MName == 'CS' & Credits == 4| = 2")]
            ),
        }
        out = SnowflakeSynthesizer().solve(
            db, "Students", constraints
        ).database
        view = fk_join(out.relation("Students"), out.relation("Majors"),
                       "major_id")
        view = fk_join(view, out.relation("Courses"), "course_id")
        assert view.count(
            constraints[("Students", "course_id")].ccs[0].predicate
        ) == 2

    def test_dim_edge_dcs_respected(self):
        db = _university()
        constraints = {
            ("Majors", "dept_id"): EdgeConstraints(
                dcs=[parse_dc("not(t1.MName == 'CS' & t2.MName == 'Math')")]
            ),
        }
        # Rooting the traversal at Majors leaves the Students edges
        # unreached — an intentionally partial run.
        out = SnowflakeSynthesizer().solve(
            db, "Majors", constraints, allow_unreachable=True
        ).database
        majors = out.relation("Majors")
        by_dept = {}
        for i in range(len(majors)):
            row = majors.row(i)
            by_dept.setdefault(row["dept_id"], set()).add(row["MName"])
        for names in by_dept.values():
            assert not ({"CS", "Math"} <= names)

    def test_unknown_edge_constraint_rejected(self):
        db = _university()
        with pytest.raises(SchemaError):
            SnowflakeSynthesizer().solve(
                db, "Students", {("Students", "nope"): EdgeConstraints()}
            )

    def test_input_database_never_mutated(self):
        """solve works on a copy; the caller's database stays pristine."""
        db = _university()
        before = {
            name: db.relation(name).schema.names
            for name in db.relation_names
        }
        result = SnowflakeSynthesizer().solve(db, "Students", {})
        for name, names in before.items():
            assert db.relation(name).schema.names == names
        assert "major_id" not in db.relation("Students").schema
        assert "major_id" in result.database.relation("Students").schema

    def test_failed_edge_leaves_input_untouched(self):
        """A mid-traversal failure must not half-complete the input.

        The second BFS edge carries a CC over an attribute that does not
        exist, so edge 1 solves fine and edge 2 raises — before the fix,
        the caller's Students relation kept edge 1's imputed column.
        """
        db = _university()
        constraints = {
            ("Students", "course_id"): EdgeConstraints(
                ccs=[parse_cc("|NoSuchAttr == 'x'| = 1")]
            ),
        }
        with pytest.raises(ReproError):
            SnowflakeSynthesizer().solve(db, "Students", constraints)
        assert "major_id" not in db.relation("Students").schema
        assert "course_id" not in db.relation("Students").schema
        assert db.relation("Majors").schema.names == ("mid", "MName")

    def test_unreachable_edge_raises_naming_it(self):
        """Declared FKs in a disconnected component must not be silently
        skipped."""
        db = _university()
        db.add_relation(
            "Buildings",
            Relation.from_columns({"bid": [1], "Campus": ["North"]},
                                  key="bid"),
        )
        db.add_relation(
            "Rooms",
            Relation.from_columns({"rid": [1, 2], "Size": [10, 20]},
                                  key="rid"),
        )
        db.add_foreign_key("Rooms", "building_id", "Buildings")
        with pytest.raises(SchemaError, match=r"Rooms.*building_id"):
            SnowflakeSynthesizer().solve(db, "Students", {})
        # The opt-out completes the reachable component only.
        result = SnowflakeSynthesizer().solve(
            db, "Students", {}, allow_unreachable=True
        )
        assert len(result.steps) == 3
        assert "building_id" not in result.database.relation("Rooms").schema

    def test_constraints_on_unreachable_edge_allowed_in_partial_run(self):
        """A constraints dict built for the whole graph must not block an
        intentionally partial run — declared edges are never 'unknown'."""
        db = _university()
        db.add_relation(
            "Buildings",
            Relation.from_columns({"bid": [1], "Campus": ["North"]},
                                  key="bid"),
        )
        db.add_relation(
            "Rooms",
            Relation.from_columns({"rid": [1, 2], "Size": [10, 20]},
                                  key="rid"),
        )
        db.add_foreign_key("Rooms", "building_id", "Buildings")
        constraints = {
            ("Students", "major_id"): EdgeConstraints(
                ccs=[parse_cc("|Year == 1 & MName == 'CS'| = 3")]
            ),
            ("Rooms", "building_id"): EdgeConstraints(),
        }
        result = SnowflakeSynthesizer().solve(
            db, "Students", constraints, allow_unreachable=True
        )
        assert len(result.steps) == 3
        # Without the opt-out the unreached edge still raises.
        with pytest.raises(SchemaError, match="unreachable"):
            SnowflakeSynthesizer().solve(db, "Students", constraints)

    def test_diamond_schema_joins_shared_dimension_once(self):
        """Two completed paths into one dimension must not double-join
        (or collide on) that dimension's attributes."""
        db = Database()
        db.add_relation(
            "F",
            Relation.from_columns(
                {"fid": [1, 2, 3, 4], "W": [1, 2, 1, 2]}, key="fid"
            ),
        )
        db.add_relation(
            "A",
            Relation.from_columns({"aid": [1, 2], "AN": ["a1", "a2"]},
                                  key="aid"),
        )
        db.add_relation(
            "B",
            Relation.from_columns({"bid": [1, 2], "BN": ["b1", "b2"]},
                                  key="bid"),
        )
        db.add_relation(
            "D",
            Relation.from_columns({"did": [1, 2], "DN": ["d1", "d2"]},
                                  key="did"),
        )
        db.add_foreign_key("F", "a", "A")
        db.add_foreign_key("F", "b", "B")
        db.add_foreign_key("A", "d", "D")
        db.add_foreign_key("B", "d2", "D")
        synth = SnowflakeSynthesizer()
        result = synth.solve(db, "F", {})
        assert len(result.steps) == 4
        completed = {
            (fk.child, fk.column) for fk in result.database.foreign_keys
        }
        view = synth._extended_view(result.database, "F", completed)
        assert list(view.schema.names).count("DN") == 1
        # Joined FK columns stay in the view (they always did); D's
        # attributes appear exactly once despite the two paths into D.
        assert set(view.schema.names) == {
            "fid", "W", "a", "b", "AN", "BN", "DN", "d", "d2",
        }
