"""The snowflake-schema extension (Example 5.6)."""

import pytest

from repro.constraints.parser import parse_cc, parse_dc
from repro.core.snowflake import EdgeConstraints, SnowflakeSynthesizer
from repro.errors import SchemaError
from repro.relational.database import Database
from repro.relational.join import fk_join
from repro.relational.relation import Relation


def _university() -> Database:
    """Example 5.6's Students → {Majors, Courses}, Majors → Departments."""
    db = Database()
    db.add_relation(
        "Students",
        Relation.from_columns(
            {
                "sid": list(range(1, 13)),
                "Year": [1, 2, 3, 4] * 3,
            },
            key="sid",
        ),
    )
    db.add_relation(
        "Majors",
        Relation.from_columns(
            {"mid": [1, 2, 3], "MName": ["CS", "Math", "Bio"]}, key="mid"
        ),
    )
    db.add_relation(
        "Courses",
        Relation.from_columns(
            {"cid": [1, 2], "Credits": [3, 4]}, key="cid"
        ),
    )
    db.add_relation(
        "Departments",
        Relation.from_columns(
            {"did": [1, 2], "DName": ["Engineering", "Science"]}, key="did"
        ),
    )
    db.add_foreign_key("Students", "major_id", "Majors")
    db.add_foreign_key("Students", "course_id", "Courses")
    db.add_foreign_key("Majors", "dept_id", "Departments")
    return db


class TestSnowflake:
    def test_all_fks_completed(self):
        db = _university()
        result = SnowflakeSynthesizer().solve(db, "Students", {})
        students = db.relation("Students")
        assert "major_id" in students.schema
        assert "course_id" in students.schema
        assert "dept_id" in db.relation("Majors").schema
        assert len(result.steps) == 3

    def test_fk_values_are_valid_references(self):
        db = _university()
        SnowflakeSynthesizer().solve(db, "Students", {})
        # joining must not raise
        fk_join(db.relation("Students"), db.relation("Majors"), "major_id")
        fk_join(db.relation("Majors"), db.relation("Departments"), "dept_id")

    def test_edge_constraints_applied(self):
        db = _university()
        constraints = {
            ("Students", "major_id"): EdgeConstraints(
                ccs=[parse_cc("|Year == 1 & MName == 'CS'| = 3")]
            ),
        }
        result = SnowflakeSynthesizer().solve(db, "Students", constraints)
        view = fk_join(db.relation("Students"), db.relation("Majors"), "major_id")
        assert view.count(constraints[("Students", "major_id")].ccs[0].predicate) == 3

    def test_multi_hop_cc_uses_accumulated_join(self):
        """Step-2 CCs may reference Majors attributes (paper's example)."""
        db = _university()
        constraints = {
            ("Students", "major_id"): EdgeConstraints(
                ccs=[parse_cc("|Year == 1 & MName == 'CS'| = 3")]
            ),
            ("Students", "course_id"): EdgeConstraints(
                ccs=[parse_cc("|MName == 'CS' & Credits == 4| = 2")]
            ),
        }
        SnowflakeSynthesizer().solve(db, "Students", constraints)
        view = fk_join(db.relation("Students"), db.relation("Majors"), "major_id")
        view = fk_join(view, db.relation("Courses"), "course_id")
        assert view.count(
            constraints[("Students", "course_id")].ccs[0].predicate
        ) == 2

    def test_dim_edge_dcs_respected(self):
        db = _university()
        constraints = {
            ("Majors", "dept_id"): EdgeConstraints(
                dcs=[parse_dc("not(t1.MName == 'CS' & t2.MName == 'Math')")]
            ),
        }
        SnowflakeSynthesizer().solve(db, "Majors", constraints)
        majors = db.relation("Majors")
        by_dept = {}
        for i in range(len(majors)):
            row = majors.row(i)
            by_dept.setdefault(row["dept_id"], set()).add(row["MName"])
        for names in by_dept.values():
            assert not ({"CS", "Math"} <= names)

    def test_unknown_edge_constraint_rejected(self):
        db = _university()
        with pytest.raises(SchemaError):
            SnowflakeSynthesizer().solve(
                db, "Students", {("Students", "nope"): EdgeConstraints()}
            )
