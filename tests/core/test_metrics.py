"""Error measures (Section 6.1)."""

import pytest

from repro.constraints.parser import parse_cc, parse_dc
from repro.core.metrics import ErrorReport, cc_errors, dc_error, evaluate
from repro.relational.join import fk_join
from repro.relational.relation import Relation


@pytest.fixture
def completed():
    r1 = Relation.from_columns(
        {
            "pid": [1, 2, 3],
            "Rel": ["Owner", "Owner", "Spouse"],
            "hid": [1, 1, 2],
        },
        key="pid",
    )
    r2 = Relation.from_columns(
        {"hid": [1, 2], "Area": ["Chicago", "NYC"]}, key="hid"
    )
    return r1, r2


class TestCcErrors:
    def test_relative_error_thresholded_at_10(self, completed):
        r1, r2 = completed
        view = fk_join(r1, r2, "hid")
        ccs = [
            parse_cc("|Rel == 'Owner' & Area == 'Chicago'| = 2"),  # exact
            parse_cc("|Rel == 'Owner' & Area == 'NYC'| = 1"),  # off by 1
            parse_cc("|Rel == 'Spouse' & Area == 'NYC'| = 50"),  # off by 49
        ]
        errors = cc_errors(view, ccs)
        assert errors[0] == 0.0
        assert errors[1] == pytest.approx(1 / 10)  # max(10, 1) = 10
        assert errors[2] == pytest.approx(49 / 50)

    def test_zero_target_uses_threshold(self, completed):
        r1, r2 = completed
        view = fk_join(r1, r2, "hid")
        cc = parse_cc("|Rel == 'Owner' & Area == 'Chicago'| = 0")
        assert cc_errors(view, [cc]) == [pytest.approx(2 / 10)]


class TestDcError:
    def test_paper_example_fraction(self, completed):
        r1, _ = completed
        dc = parse_dc("not(t1.Rel == 'Owner' & t2.Rel == 'Owner')")
        assert dc_error(r1, "hid", [dc]) == pytest.approx(2 / 3)

    def test_no_violations(self, completed):
        r1, _ = completed
        dc = parse_dc("not(t1.Rel == 'Spouse' & t2.Rel == 'Spouse')")
        assert dc_error(r1, "hid", [dc]) == 0.0

    def test_empty_relation(self):
        empty = Relation.from_columns({"pid": [], "Rel": [], "hid": []}, key="pid")
        assert dc_error(empty, "hid", []) == 0.0


class TestErrorReport:
    def test_summary_statistics(self):
        report = ErrorReport(per_cc=[0.0, 0.0, 0.5, 1.0], dc_error=0.25)
        assert report.median_cc_error == 0.25
        assert report.mean_cc_error == pytest.approx(0.375)
        assert report.max_cc_error == 1.0
        assert report.num_exact_ccs == 2
        assert report.summary()["dc_error"] == 0.25

    def test_empty_report(self):
        report = ErrorReport()
        assert report.median_cc_error == 0.0
        assert report.mean_cc_error == 0.0


class TestEvaluate:
    def test_full_evaluation(self, completed):
        r1, r2 = completed
        ccs = [parse_cc("|Rel == 'Owner' & Area == 'Chicago'| = 2")]
        dcs = [parse_dc("not(t1.Rel == 'Owner' & t2.Rel == 'Owner')")]
        report = evaluate(r1, r2, "hid", ccs, dcs)
        assert report.per_cc == [0.0]
        assert report.dc_error == pytest.approx(2 / 3)
