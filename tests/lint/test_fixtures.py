"""The known-bad corpus: every check fires exactly where annotated.

Each fixture file marks its expected findings with a trailing
``# expect: CODE[,CODE]`` comment; the tests diff the engine's output
against those annotations, so a checker that under- or over-fires on
the corpus fails loudly with the exact line.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.lint import checker_codes, lint_paths

FIXTURES = Path(__file__).parent / "fixtures"

_EXPECT = re.compile(r"#\s*expect:\s*(?P<codes>[A-Z0-9_,\s]+)")

FIXTURE_FILES = sorted(
    p.relative_to(FIXTURES).as_posix() for p in FIXTURES.rglob("*.py")
)


def expected_findings(path: Path):
    """``{(line, code)}`` parsed from the fixture's annotations."""
    expected = set()
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        match = _EXPECT.search(line)
        if match:
            for code in match.group("codes").split(","):
                expected.add((lineno, code.strip()))
    return expected


@pytest.mark.parametrize("name", FIXTURE_FILES)
def test_fixture_matches_annotations(name):
    path = FIXTURES / name
    report = lint_paths([path], base=FIXTURES, respect_scopes=False)
    assert not report.errors
    got = {(d.line, d.code) for d in report.new}
    assert got == expected_findings(path)


def test_corpus_covers_every_registered_code():
    report = lint_paths([FIXTURES], base=FIXTURES, respect_scopes=False)
    fired = {d.code for d in report.new}
    assert fired == set(checker_codes())


def test_scoped_run_still_fires_every_family():
    """The CLI lints with scopes on; the corpus layout (determinism
    fixture under ``core/``) must keep every family firing anyway."""
    report = lint_paths([FIXTURES], base=FIXTURES, respect_scopes=True)
    families = {d.code[0] for d in report.new}
    assert families == {"D", "X", "S", "P", "F"}
    assert not report.ok
