"""Config-drift corpus: a miniature SolverConfig world out of sync."""

from dataclasses import dataclass


@dataclass(frozen=True)
class SolverConfig:
    backend: str = "scipy"
    time_limit: float = 10.0
    workers: int = 1
    mystery_knob: int = 0  # expect: F501


RESULT_OPTION_FIELDS = (  # expect: F502
    "backend",
    "time_limit",
    "vanished_option",
)

NON_RESULT_OPTION_FIELDS = (  # expect: F502
    "workers",
    "backend",
)


@dataclass
class MiniSpec:
    name: str
    rows: int
    secret: str = ""

    @classmethod
    def from_dict(cls, data):
        known = {"name", "rows"}  # expect: F503
        unexpected = set(data) - known
        if unexpected:
            raise ValueError(f"unknown keys {sorted(unexpected)}")
        return cls(**data)
