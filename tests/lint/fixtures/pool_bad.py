"""Pool-payload corpus: unpicklable callables shipped to process pools."""

from concurrent.futures import ProcessPoolExecutor


def bad_lambda(payloads):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(lambda p: p * 2, p) for p in payloads]  # expect: P401
    return [f.result() for f in futures]


def bad_nested(payloads):
    def work(p):
        return p * 2

    with ProcessPoolExecutor() as pool:
        results = list(pool.map(work, payloads))  # expect: P402
    return results


def ok_module_level(payloads):
    with ProcessPoolExecutor() as pool:
        results = list(pool.map(module_level_work, payloads))
    return results


def module_level_work(p):
    return p * 2
