"""Determinism corpus: a trailing expect-marker names each bad line.

Lives under a ``core/`` directory so the D-series scope applies even
when the engine respects checker scopes (as the CLI does).
"""

import glob
import locale
import os
import random
import time
from datetime import datetime
from pathlib import Path
from random import shuffle

import numpy as np


def iterate_sets():
    tags = {"a", "b", "c"}
    out = []
    for tag in tags:  # expect: D101
        out.append(tag)
    frozen = [t for t in tags]  # expect: D101
    listed = list(tags)  # expect: D101
    ok_sorted = sorted(tags)
    ok_setcomp = {t.upper() for t in tags}
    ok_len = len(tags)
    return out, frozen, listed, ok_sorted, ok_setcomp, ok_len


def draw(items):
    a = random.random()  # expect: D102
    np.random.seed(7)  # expect: D102
    shuffle(items)  # expect: D102
    rng = random.Random(7)
    ok = rng.random()
    return a, ok


def stamp():
    t = time.time()  # expect: D103
    now = datetime.now()  # expect: D103
    ok_duration = time.perf_counter()
    return t, now, ok_duration


def env_reads():
    a = os.environ.get("HOME")  # expect: D104
    b = os.getenv("LANG")  # expect: D104
    return a, b


def locale_read():
    return locale.getlocale()  # expect: D105


def listings(base):
    entries = os.listdir(base)  # expect: D106
    pats = glob.glob("*.csv")  # expect: D106
    walked = [p for p in Path(base).iterdir()]  # expect: D106
    ok_sorted = sorted(os.listdir(base))
    ok_membership = "x" in os.listdir(base)
    ok_any = any(Path(base).iterdir())
    return entries, pats, walked, ok_sorted, ok_membership, ok_any
