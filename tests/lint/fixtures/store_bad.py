"""Store-lifetime corpus: relations escaping their TemporaryDirectory."""

import tempfile

from repro.relational.store import open_store


def bad_return(spec):
    tmp = tempfile.TemporaryDirectory()
    store = open_store(tmp.name)
    relation = store.load(spec)
    return relation  # expect: S301


def bad_commit(db, spec, loader):
    with tempfile.TemporaryDirectory() as td:
        relation = loader(td, spec)
        db.replace_relation("r1", relation)  # expect: S302


def ok_scalar_summary(spec):
    tmp = tempfile.TemporaryDirectory()
    store = open_store(tmp.name)
    count = len(store.load(spec))
    return count


def ok_unrelated(db, relation):
    db.replace_relation("r1", relation)
    return relation
