"""Executor-seam corpus: direct kernel calls outside ``relational/``."""

from repro.relational.executor import NUMPY_EXECUTOR, executor_from_config
from repro.relational.join import fk_join


def bad_counts(relation, attrs):
    return relation.group_counts(attrs)  # expect: X201


def bad_distinct(relation, attrs):
    return relation.distinct(attrs)  # expect: X201


def bad_join(r1, r2):
    return fk_join(r1, r2, "fk")  # expect: X202


def ok_executor_param(executor, relation, attrs):
    return executor.group_counts(relation, attrs)


def ok_default_executor(r1, r2):
    return NUMPY_EXECUTOR.fk_join(r1, r2, "fk")


def ok_from_config(config, relation, attrs):
    ex = executor_from_config(config)
    return ex.distinct(relation, attrs)
