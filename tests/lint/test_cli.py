"""The ``repro-synth lint`` / ``python -m repro.lint`` surface."""

from __future__ import annotations

from pathlib import Path

from repro.cli import main as synth_main
from repro.lint.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"
BAD = "import random\n\n\ndef f():\n    return random.random()\n"


def test_fixtures_corpus_exits_nonzero(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert lint_main([str(FIXTURES), "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "new finding(s)" in out


def test_clean_tree_exits_zero(tmp_path, monkeypatch, capsys):
    target = tmp_path / "pkg"
    target.mkdir()
    (target / "ok.py").write_text("X = 1\n")
    monkeypatch.chdir(tmp_path)
    assert lint_main([str(target)]) == 0
    assert "0 new finding(s)" in capsys.readouterr().out


def test_update_baseline_then_clean(tmp_path, monkeypatch, capsys):
    target = tmp_path / "core"
    target.mkdir()
    (target / "mod.py").write_text(BAD)
    monkeypatch.chdir(tmp_path)

    assert lint_main([str(target), "--no-baseline"]) == 1
    assert lint_main([str(target), "--update-baseline"]) == 0
    assert (tmp_path / "lint-baseline.json").exists()
    capsys.readouterr()
    assert lint_main([str(target)]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out


def test_list_checks(capsys):
    assert lint_main(["--list-checks"]) == 0
    out = capsys.readouterr().out
    for code in ("D101", "X201", "S301", "P401", "F501"):
        assert code in out


def test_github_annotations(tmp_path, monkeypatch, capsys):
    target = tmp_path / "core"
    target.mkdir()
    (target / "mod.py").write_text(BAD)
    monkeypatch.chdir(tmp_path)
    assert lint_main([str(target), "--no-baseline", "--github"]) == 1
    out = capsys.readouterr().out
    assert "::error file=" in out
    assert "repro-lint D102" in out


def test_missing_path_is_a_usage_error(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert lint_main(["no/such/path.txt"]) == 2
    assert "error:" in capsys.readouterr().out


def test_repro_synth_lint_subcommand(tmp_path, monkeypatch, capsys):
    target = tmp_path / "pkg"
    target.mkdir()
    (target / "ok.py").write_text("X = 1\n")
    monkeypatch.chdir(tmp_path)
    assert synth_main(["lint", str(target)]) == 0
    assert "0 new finding(s)" in capsys.readouterr().out


def test_show_baselined_renders_tag(tmp_path, monkeypatch, capsys):
    target = tmp_path / "core"
    target.mkdir()
    (target / "mod.py").write_text(BAD)
    monkeypatch.chdir(tmp_path)
    lint_main([str(target), "--update-baseline"])
    capsys.readouterr()
    assert lint_main([str(target), "--show-baselined"]) == 0
    assert "[baselined]" in capsys.readouterr().out
