"""The committed-baseline ratchet: land clean, only ever shrink."""

from __future__ import annotations

from repro.lint import Baseline, lint_paths

BAD = "import random\n\n\ndef f():\n    return random.random()\n"


def _write(tmp_path, source):
    path = tmp_path / "mod.py"
    path.write_text(source)
    return path


def _lint(tmp_path, baseline=None):
    return lint_paths(
        [tmp_path], base=tmp_path, baseline=baseline, respect_scopes=False
    )


def test_baselined_finding_does_not_fail(tmp_path):
    _write(tmp_path, BAD)
    first = _lint(tmp_path)
    assert not first.ok

    baseline = Baseline.from_findings(first.new)
    second = _lint(tmp_path, baseline)
    assert second.ok
    assert len(second.baselined) == 1
    assert second.new == []


def test_baseline_survives_line_shifts(tmp_path):
    _write(tmp_path, BAD)
    baseline = Baseline.from_findings(_lint(tmp_path).new)

    # Prepend unrelated code: the finding moves down three lines but its
    # (path, code, source-line) key is unchanged.
    _write(tmp_path, "X = 1\nY = 2\nZ = 3\n" + BAD)
    report = _lint(tmp_path, baseline)
    assert report.ok
    assert len(report.baselined) == 1


def test_new_finding_alongside_baselined_one_fails(tmp_path):
    _write(tmp_path, BAD)
    baseline = Baseline.from_findings(_lint(tmp_path).new)

    _write(tmp_path, BAD + "\n\ndef g():\n    return random.shuffle([])\n")
    report = _lint(tmp_path, baseline)
    assert not report.ok
    assert len(report.baselined) == 1
    assert len(report.new) == 1


def test_duplicate_key_consumes_multiset_budget(tmp_path):
    _write(tmp_path, BAD)
    baseline = Baseline.from_findings(_lint(tmp_path).new)

    # A second, textually identical violation shares the baseline key but
    # exceeds its count budget of 1 — it must be new, not absorbed.
    _write(
        tmp_path,
        BAD + "\n\ndef g():\n    return random.random()\n",
    )
    report = _lint(tmp_path, baseline)
    assert len(report.baselined) == 1
    assert len(report.new) == 1


def test_fixed_finding_reports_stale_entry(tmp_path):
    _write(tmp_path, BAD)
    baseline = Baseline.from_findings(_lint(tmp_path).new)

    _write(tmp_path, "import random\n\n\ndef f():\n    return 4\n")
    report = _lint(tmp_path, baseline)
    assert report.ok  # stale entries warn, they don't fail
    assert len(report.stale_baseline) == 1
    assert "D102" in report.stale_baseline[0]


def test_roundtrip_through_disk(tmp_path):
    _write(tmp_path, BAD)
    report = _lint(tmp_path)
    baseline_path = tmp_path / "baseline.json"
    Baseline.from_findings(report.new).save(baseline_path)
    loaded = Baseline.load(baseline_path)
    assert loaded.counts == Baseline.from_findings(report.new).counts
    assert _lint(tmp_path, loaded).ok
