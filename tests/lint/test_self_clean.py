"""Self-application: the repo lints clean, and the F-series ratchet
actually guards the fingerprint classification."""

from __future__ import annotations

from pathlib import Path

from repro.core.config import SolverConfig
from repro.lint import Baseline, lint_paths
from repro.lint.checkers.config_drift import ConfigDriftChecker
from repro.spec.fingerprint import (
    NON_RESULT_OPTION_FIELDS,
    RESULT_OPTION_FIELDS,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
CONFIG_PY = REPO_ROOT / "src" / "repro" / "core" / "config.py"
FINGERPRINT_PY = REPO_ROOT / "src" / "repro" / "spec" / "fingerprint.py"


def test_repo_lints_clean_against_committed_baseline():
    baseline_path = REPO_ROOT / "lint-baseline.json"
    baseline = (
        Baseline.load(baseline_path) if baseline_path.exists() else None
    )
    report = lint_paths(
        [REPO_ROOT / "src"], base=REPO_ROOT, baseline=baseline
    )
    assert report.errors == []
    assert report.new == [], "\n".join(d.render() for d in report.new)
    assert report.stale_baseline == []


def test_classification_partitions_solver_config_exactly():
    fields = set(SolverConfig.__dataclass_fields__)
    classified = set(RESULT_OPTION_FIELDS) | set(NON_RESULT_OPTION_FIELDS)
    assert classified == fields
    assert not set(RESULT_OPTION_FIELDS) & set(NON_RESULT_OPTION_FIELDS)


def _drift_report(tmp_path, config_source, fingerprint_source):
    (tmp_path / "config.py").write_text(config_source)
    (tmp_path / "fingerprint.py").write_text(fingerprint_source)
    return lint_paths(
        [tmp_path],
        base=tmp_path,
        checkers=[ConfigDriftChecker()],
        respect_scopes=False,
    )


def test_deleting_a_result_option_entry_fails_f_series(tmp_path):
    fingerprint = FINGERPRINT_PY.read_text()
    entry = '    "backend",\n'
    assert entry in fingerprint
    report = _drift_report(
        tmp_path, CONFIG_PY.read_text(), fingerprint.replace(entry, "", 1)
    )
    assert any(d.code == "F501" for d in report.new)
    assert any("backend" in d.message for d in report.new)


def test_unclassified_new_config_field_fails_f_series(tmp_path):
    config = CONFIG_PY.read_text()
    anchor = "    backend: str = "
    assert anchor in config
    config = config.replace(
        anchor, "    brand_new_knob: int = 0\n" + anchor, 1
    )
    report = _drift_report(tmp_path, config, FINGERPRINT_PY.read_text())
    assert any(
        d.code == "F501" and "brand_new_knob" in d.message
        for d in report.new
    )


def test_stale_classification_entry_fails_f_series(tmp_path):
    fingerprint = FINGERPRINT_PY.read_text()
    fingerprint = fingerprint.replace(
        '    "backend",\n', '    "backend",\n    "retired_knob",\n', 1
    )
    report = _drift_report(
        tmp_path, CONFIG_PY.read_text(), fingerprint
    )
    assert any(
        d.code == "F502" and "retired_knob" in d.message
        for d in report.new
    )


def test_current_sources_pass_f_series(tmp_path):
    report = _drift_report(
        tmp_path, CONFIG_PY.read_text(), FINGERPRINT_PY.read_text()
    )
    assert report.new == [], "\n".join(d.render() for d in report.new)
