"""Regressions for the findings repro-lint's first run surfaced.

The tentpole run flagged direct kernel calls outside the executor seam
(bench/fidelity, bench/outofcore, datagen, core/synthesizer) and
hash-order-dependent set iteration in Phase II (hypergraph vertex
discovery, invalid-row conflict accumulation).  These tests pin both
the behavioral fixes and the now-clean lint status of each module.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.datagen.census import CensusConfig, generate_census
from repro.lint import lint_paths
from repro.phase2.hypergraph import ConflictHypergraph
from repro.relational.join import fk_join

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"

FIXED_MODULES = [
    "bench/fidelity.py",
    "bench/outofcore.py",
    "core/synthesizer.py",
    "datagen/census.py",
    "datagen/constraints_census.py",
    "datagen/retail.py",
    "phase2/hypergraph.py",
    "phase2/invalid.py",
]


@pytest.mark.parametrize("name", FIXED_MODULES)
def test_fixed_module_lints_clean_without_baseline(name):
    report = lint_paths([SRC / name], base=REPO_ROOT)
    assert report.new == [], "\n".join(d.render() for d in report.new)


def test_hypergraph_vertex_order_is_member_order_independent():
    orders = ([3, 1, 2], [2, 3, 1], [1, 2, 3])
    graphs = []
    for members in orders:
        g = ConflictHypergraph.over([])
        assert g.add_edge(members)
        graphs.append(g)
    assert all(g.vertices == [1, 2, 3] for g in graphs)
    # Incident indices agree too, whatever order the edge listed them.
    assert all(
        g.incident_edges(v) == graphs[0].incident_edges(v)
        for g in graphs
        for v in (1, 2, 3)
    )


def test_executor_dispatched_ground_truth_join_is_byte_identical():
    data = generate_census(CensusConfig(n_households=20, seed=11))
    via_seam = data.ground_truth_join()
    direct = fk_join(data.persons, data.housing, "hid")
    assert via_seam.content_hash() == direct.content_hash()


def test_marginal_tvd_support_order_is_canonical():
    from repro.bench.fidelity import marginal_tvd

    data = generate_census(CensusConfig(n_households=30, seed=5))
    view = data.ground_truth_join()
    assert marginal_tvd(view, view, ["Rel"]) == 0.0
    tvd = marginal_tvd(view, data.ground_truth_join(), ["Rel", "Area"])
    assert tvd == 0.0
