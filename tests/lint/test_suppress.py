"""Inline suppression semantics."""

from __future__ import annotations

import textwrap

from repro.lint import lint_paths
from repro.lint.suppress import collect_suppressions

BAD_RANDOM = "import random\n\n\ndef f():\n    return random.random()"


def _lint_source(tmp_path, source):
    path = tmp_path / "core" / "mod.py"
    path.parent.mkdir(exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return lint_paths([path], base=tmp_path, respect_scopes=False)


def test_unsuppressed_fires(tmp_path):
    report = _lint_source(tmp_path, BAD_RANDOM)
    assert [d.code for d in report.new] == ["D102"]
    assert report.suppressed == 0


def test_line_suppression_silences_exactly_that_code(tmp_path):
    report = _lint_source(
        tmp_path,
        BAD_RANDOM + "  # repro-lint: disable=D102",
    )
    assert report.new == []
    assert report.suppressed == 1


def test_line_suppression_for_other_code_does_not_apply(tmp_path):
    report = _lint_source(
        tmp_path,
        BAD_RANDOM + "  # repro-lint: disable=D103",
    )
    assert [d.code for d in report.new] == ["D102"]


def test_bare_disable_silences_every_code_on_the_line(tmp_path):
    report = _lint_source(
        tmp_path,
        BAD_RANDOM + "  # repro-lint: disable",
    )
    assert report.new == []
    assert report.suppressed == 1


def test_disable_file_in_header(tmp_path):
    report = _lint_source(
        tmp_path,
        '"""Docstring."""\n# repro-lint: disable-file=D102\n' + BAD_RANDOM,
    )
    assert report.new == []
    assert report.suppressed == 1


def test_disable_file_after_first_statement_is_ignored(tmp_path):
    report = _lint_source(
        tmp_path,
        BAD_RANDOM + "\n# repro-lint: disable-file=D102\n",
    )
    assert [d.code for d in report.new] == ["D102"]


def test_marker_inside_string_does_not_suppress():
    supp = collect_suppressions(
        'text = "# repro-lint: disable=D102"\n'
    )
    assert not supp.by_line
    assert not supp.file_wide


def test_multiple_codes_in_one_marker():
    supp = collect_suppressions("x = 1  # repro-lint: disable=D102, X201\n")
    assert supp.by_line[1] == {"D102", "X201"}
