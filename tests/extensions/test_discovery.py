"""FK DC discovery from completed data."""

import pytest

from repro.core.metrics import dc_error
from repro.errors import ReproError
from repro.extensions.discovery import (
    DiscoveryConfig,
    discover_fk_dcs,
    discovered_windows,
)
from repro.relational.relation import Relation


@pytest.fixture
def completed():
    """Two households with an owner, spouse and child each."""
    return Relation.from_columns(
        {
            "pid": list(range(6)),
            "Rel": ["Owner", "Spouse", "Child", "Owner", "Spouse", "Child"],
            "Age": [50, 45, 20, 60, 62, 30],
            "hid": [1, 1, 1, 2, 2, 2],
        },
        key="pid",
    )


class TestDiscoveredWindows:
    def test_windows_are_observed_gaps(self, completed):
        windows = discovered_windows(
            completed, "hid", DiscoveryConfig(min_support=1)
        )
        assert windows["Spouse"] == (-5, 2, 2)
        assert windows["Child"] == (-30, -30, 2)

    def test_groups_without_single_anchor_skipped(self):
        no_owner = Relation.from_columns(
            {
                "pid": [0, 1],
                "Rel": ["Spouse", "Child"],
                "Age": [40, 10],
                "hid": [1, 1],
            },
            key="pid",
        )
        assert discovered_windows(no_owner, "hid") == {}


class TestDiscoverFkDcs:
    def test_exclusivity_mined(self, completed):
        dcs = discover_fk_dcs(
            completed, "hid", DiscoveryConfig(min_support=1)
        )
        names = {dc.name for dc in dcs}
        assert "discovered_exclusive_Owner" in names
        assert "discovered_exclusive_Spouse" in names

    def test_window_dcs_mined(self, completed):
        dcs = discover_fk_dcs(
            completed, "hid", DiscoveryConfig(min_support=1)
        )
        names = {dc.name for dc in dcs}
        assert {"discovered_Spouse_low", "discovered_Spouse_up"} <= names

    def test_mined_dcs_hold_on_training_data(self, completed):
        dcs = discover_fk_dcs(
            completed, "hid", DiscoveryConfig(min_support=1)
        )
        assert dc_error(completed, "hid", dcs) == 0.0

    def test_min_support_filters(self, completed):
        dcs = discover_fk_dcs(
            completed, "hid", DiscoveryConfig(min_support=5)
        )
        assert not any("low" in dc.name for dc in dcs)

    def test_slack_widens_windows(self, completed):
        tight = discover_fk_dcs(
            completed, "hid", DiscoveryConfig(min_support=1, slack=0)
        )
        loose = discover_fk_dcs(
            completed, "hid", DiscoveryConfig(min_support=1, slack=10)
        )
        tight_low = next(d for d in tight if d.name == "discovered_Spouse_low")
        loose_low = next(d for d in loose if d.name == "discovered_Spouse_low")
        assert loose_low.binary_atoms[0].offset < tight_low.binary_atoms[0].offset

    def test_missing_columns_rejected(self, completed):
        with pytest.raises(ReproError):
            discover_fk_dcs(completed.drop_column("Age"), "hid")


class TestOnCensusGroundTruth:
    def test_recovered_windows_inside_table4(self, census_small):
        """Mined windows must sit inside the generating Table 4 ranges."""
        config = DiscoveryConfig(
            rel_attr="Rel", age_attr="Age", anchor_rel="Owner", min_support=3
        )
        windows = discovered_windows(census_small.persons, "hid", config)
        table4 = {
            "Spouse": (-50, 50),
            "Unmarried partner": (-50, 50),
            "Biological child": (-50, -12),
            "Sibling": (-35, 35),
            "Father/Mother": (12, 115),
            "Grandchild": (-115, -30),
        }
        for rel, (true_lo, true_hi) in table4.items():
            if rel not in windows:
                continue  # low support at this size
            lo, hi, _ = windows[rel]
            assert true_lo <= lo and hi <= true_hi, rel

    def test_mined_dcs_hold_on_census(self, census_small):
        dcs = discover_fk_dcs(census_small.persons, "hid")
        assert dc_error(census_small.persons, "hid", dcs) == 0.0
