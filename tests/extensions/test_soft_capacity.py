"""The soft_capacity Phase-II strategy: penalised capacity overflow."""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.synthesizer import CExtensionSolver
from repro.datagen.census import CensusConfig, generate_census
from repro.datagen.constraints_census import cc_family, good_dcs
from repro.errors import ReproError
from repro.extensions.capacity import fk_usage_histogram
from repro.spec import SpecBuilder, synthesize

_SLOW = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(scope="module")
def census():
    data = generate_census(CensusConfig(n_households=60, n_areas=4, seed=3))
    return data, cc_family(data, "good", 15), good_dcs()


def _solve(data, ccs, dcs, strategy, **options):
    return CExtensionSolver().solve(
        data.persons_masked, data.housing,
        fk_column="hid", ccs=ccs, dcs=dcs,
        strategy=strategy, strategy_options=options,
    )


class TestEquivalence:
    @_SLOW
    @given(
        seed=st.integers(min_value=0, max_value=25),
        households=st.integers(min_value=20, max_value=60),
        cap=st.integers(min_value=1, max_value=5),
    )
    def test_infinite_penalty_equals_hard_capacity(
        self, seed, households, cap
    ):
        """soft_capacity(penalty=inf) is output-identical to capacity."""
        data = generate_census(
            CensusConfig(n_households=households, n_areas=4, seed=seed)
        )
        ccs = cc_family(data, "good", 8)
        dcs = good_dcs()
        hard = _solve(data, ccs, dcs, "capacity", max_per_key=cap)
        soft = _solve(
            data, ccs, dcs, "soft_capacity",
            max_per_key=cap, penalty=math.inf,
        )
        assert soft.r1_hat.to_rows() == hard.r1_hat.to_rows()
        assert soft.r2_hat.to_rows() == hard.r2_hat.to_rows()
        assert soft.phase2.overflow == {}
        assert soft.phase2.stats.total_overflow == 0


class TestSoftBehaviour:
    def test_overflow_reported_per_key(self, census):
        data, ccs, dcs = census
        result = _solve(data, ccs, dcs, "soft_capacity", max_per_key=2)
        usage = fk_usage_histogram(result.r1_hat, "hid")
        expected = {k: c - 2 for k, c in usage.items() if c > 2}
        assert result.phase2.overflow == expected
        assert result.phase2.stats.total_overflow == sum(expected.values())
        # DCs still hold exactly — softness only relaxes the capacity.
        assert result.report.errors.dc_error == 0.0

    def test_soft_mints_no_more_tuples_than_hard(self, census):
        data, ccs, dcs = census
        hard = _solve(data, ccs, dcs, "capacity", max_per_key=2)
        soft = _solve(data, ccs, dcs, "soft_capacity", max_per_key=2)
        assert (
            soft.phase2.stats.num_new_r2_tuples
            <= hard.phase2.stats.num_new_r2_tuples
        )

    def test_zero_new_tuple_cost_prefers_fresh_keys(self, census):
        """new_tuple_cost=0 makes any overflow dearer than minting, so the
        result honours the cap exactly like the hard strategy."""
        data, ccs, dcs = census
        result = _solve(
            data, ccs, dcs, "soft_capacity",
            max_per_key=2, new_tuple_cost=0.0,
        )
        usage = fk_usage_histogram(result.r1_hat, "hid")
        assert max(usage.values()) <= 2
        assert result.phase2.overflow == {}

    def test_spec_front_door_reports_overflow(self, census):
        data, _, dcs = census
        spec = (
            SpecBuilder("soft")
            .relation("persons", data=data.persons_masked, key="pid")
            .relation("housing", data=data.housing, key="hid")
            .edge("persons", "hid", "housing", dcs=list(dcs),
                  strategy="soft_capacity", options={"max_per_key": 2})
            .build()
        )
        result = synthesize(spec)
        assert result.edges[0].strategy == "soft_capacity"
        summary = result.summary()
        usage = fk_usage_histogram(result.relation("persons"), "hid")
        over = sum(c - 2 for c in usage.values() if c > 2)
        assert result.edges[0].total_overflow == over
        if over:
            assert summary["edges"][0]["total_overflow"] == over


class TestValidation:
    def test_requires_max_per_key(self, census):
        data, ccs, dcs = census
        with pytest.raises(ReproError, match="max_per_key"):
            _solve(data, ccs, dcs, "soft_capacity")

    def test_unknown_option_rejected(self, census):
        data, ccs, dcs = census
        with pytest.raises(ReproError, match="unknown"):
            _solve(
                data, ccs, dcs, "soft_capacity",
                max_per_key=2, bogus=1,
            )

    def test_nonpositive_penalty_rejected(self, census):
        data, ccs, dcs = census
        with pytest.raises(ReproError, match="penalty"):
            _solve(
                data, ccs, dcs, "soft_capacity",
                max_per_key=2, penalty=0.0,
            )
