"""The quota_coloring Phase-II strategy: per-combo quotas."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.synthesizer import CExtensionSolver
from repro.datagen.census import CensusConfig, generate_census
from repro.datagen.constraints_census import cc_family, good_dcs
from repro.errors import ReproError
from repro.extensions.capacity import fk_usage_histogram
from repro.extensions.quota_coloring import resolve_quota
from repro.spec import SpecBuilder, synthesize

_SLOW = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(scope="module")
def census():
    data = generate_census(CensusConfig(n_households=60, n_areas=4, seed=3))
    return data, cc_family(data, "good", 15), good_dcs()


def _solve(data, ccs, dcs, strategy, options=None):
    return CExtensionSolver().solve(
        data.persons_masked, data.housing,
        fk_column="hid", ccs=ccs, dcs=dcs,
        strategy=strategy, strategy_options=options,
    )


class TestEquivalence:
    @_SLOW
    @given(
        seed=st.integers(min_value=0, max_value=25),
        households=st.integers(min_value=20, max_value=60),
        num_ccs=st.integers(min_value=0, max_value=12),
    )
    def test_no_quotas_equals_plain_coloring(self, seed, households, num_ccs):
        """quota_coloring with no quotas is output-identical to coloring,
        invalid-tuple handling included."""
        data = generate_census(
            CensusConfig(n_households=households, n_areas=4, seed=seed)
        )
        ccs = cc_family(data, "good", num_ccs) if num_ccs else []
        dcs = good_dcs()
        plain = _solve(data, ccs, dcs, "coloring")
        quota = _solve(data, ccs, dcs, "quota_coloring", {})
        assert quota.r1_hat.to_rows() == plain.r1_hat.to_rows()
        assert quota.r2_hat.to_rows() == plain.r2_hat.to_rows()


class TestQuotas:
    def test_default_quota_caps_every_key(self, census):
        data, ccs, dcs = census
        result = _solve(
            data, ccs, dcs, "quota_coloring", {"default_quota": 2}
        )
        usage = fk_usage_histogram(result.r1_hat, "hid")
        assert max(usage.values()) <= 2
        assert result.report.errors.dc_error == 0.0

    def test_matched_combo_gets_its_own_quota(self, census):
        data, _, dcs = census
        housing = data.housing
        # Quota 1 for one concrete Tenure value, unlimited elsewhere.
        tenures = sorted({str(v) for v in housing.column("Tenure")})
        target = tenures[0]
        result = _solve(
            data, [], dcs, "quota_coloring",
            {"quotas": [{"match": {"Tenure": target}, "quota": 1}]},
        )
        usage = fk_usage_histogram(result.r1_hat, "hid")
        tenure_of = {
            row[housing.schema.names.index("hid")]:
                row[housing.schema.names.index("Tenure")]
            for row in result.r2_hat.to_rows()
        }
        for key, count in usage.items():
            if str(tenure_of[key]) == target:
                assert count <= 1, f"key {key} breached its quota"

    def test_first_matching_entry_wins(self):
        quotas = [({"Tenure": "a"}, 1), ({}, 7)]
        assert resolve_quota({"Tenure": "a"}, quotas, None) == 1
        assert resolve_quota({"Tenure": "b"}, quotas, None) == 7
        assert resolve_quota({"Tenure": "b"}, [({"Tenure": "a"}, 1)], 4) == 4
        assert resolve_quota({"Tenure": "b"}, [], None) is None

    def test_spec_front_door_round_trip(self, census):
        data, _, dcs = census
        spec = (
            SpecBuilder("quota")
            .relation("persons", data=data.persons_masked, key="pid")
            .relation("housing", data=data.housing, key="hid")
            .edge("persons", "hid", "housing", dcs=list(dcs),
                  strategy="quota_coloring",
                  options={"default_quota": 3})
            .build()
        )
        result = synthesize(spec)
        assert result.edges[0].strategy == "quota_coloring"
        usage = fk_usage_histogram(result.relation("persons"), "hid")
        assert max(usage.values()) <= 3


class TestValidation:
    def test_unknown_option_rejected(self, census):
        data, ccs, dcs = census
        with pytest.raises(ReproError, match="unknown"):
            _solve(data, ccs, dcs, "quota_coloring", {"bogus": 1})

    def test_bad_quota_entry_rejected(self, census):
        data, ccs, dcs = census
        with pytest.raises(ReproError, match="quota"):
            _solve(
                data, ccs, dcs, "quota_coloring",
                {"quotas": [{"match": {}, "quota": 0}]},
            )
        with pytest.raises(ReproError, match="quota"):
            _solve(
                data, ccs, dcs, "quota_coloring",
                {"quotas": [{"matches": {}, "quota": 2}]},
            )

    def test_bad_default_quota_rejected(self, census):
        data, ccs, dcs = census
        with pytest.raises(ReproError, match="default_quota"):
            _solve(data, ccs, dcs, "quota_coloring", {"default_quota": 0})

    def test_typoed_match_attribute_rejected(self, census):
        """A match on a nonexistent R2 attribute must fail loudly, not
        silently disable the quota."""
        data, ccs, dcs = census
        with pytest.raises(ReproError, match="Tenur"):
            _solve(
                data, ccs, dcs, "quota_coloring",
                {"quotas": [{"match": {"Tenur": "Rented"}, "quota": 2}]},
            )
