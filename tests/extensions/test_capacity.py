"""Capacity-constrained FK assignment."""

import pytest

from repro.constraints import parse_cc, parse_dc
from repro.core.metrics import dc_error
from repro.errors import ReproError
from repro.extensions.capacity import (
    capacity_coloring,
    fk_usage_histogram,
    solve_with_capacity,
)
from repro.phase2.hypergraph import ConflictHypergraph
from repro.relational.relation import Relation


class TestCapacityColoring:
    def test_cap_forces_spread(self):
        graph = ConflictHypergraph.over(range(4))
        coloring, skipped = capacity_coloring(graph, ["a", "b"], 2)
        assert not skipped
        usage = {}
        for c in coloring.values():
            usage[c] = usage.get(c, 0) + 1
        assert all(v <= 2 for v in usage.values())

    def test_cap_one_is_a_matching(self):
        graph = ConflictHypergraph.over(range(3))
        coloring, skipped = capacity_coloring(graph, ["a", "b", "c"], 1)
        assert not skipped
        assert len(set(coloring.values())) == 3

    def test_skips_when_capacity_exhausted(self):
        graph = ConflictHypergraph.over(range(3))
        coloring, skipped = capacity_coloring(graph, ["a"], 2)
        assert len(skipped) == 1

    def test_dc_forbidding_still_applies(self):
        graph = ConflictHypergraph()
        graph.add_edge([0, 1])
        coloring, skipped = capacity_coloring(graph, ["a", "b"], 5)
        assert coloring[0] != coloring[1]

    def test_invalid_cap_rejected(self):
        with pytest.raises(ReproError):
            capacity_coloring(ConflictHypergraph(), ["a"], 0)

    def test_shared_usage_across_calls(self):
        usage = {}
        g1 = ConflictHypergraph.over([0, 1])
        capacity_coloring(g1, ["a"], 2, {}, usage)
        g2 = ConflictHypergraph.over([2])
        coloring, skipped = capacity_coloring(g2, ["a"], 2, {}, usage)
        assert skipped == [2]  # "a" already full from the first call


class TestSolveWithCapacity:
    @pytest.fixture
    def instance(self):
        r1 = Relation.from_columns(
            {
                "pid": list(range(10)),
                "Age": [30 + i for i in range(10)],
                "Rel": ["Child"] * 10,
            },
            key="pid",
        )
        r2 = Relation.from_columns(
            {"hid": [1, 2], "Area": ["X", "Y"]}, key="hid"
        )
        return r1, r2

    def test_capacity_respected(self, instance):
        r1, r2 = instance
        result = solve_with_capacity(
            r1, r2, fk_column="hid", max_per_key=3
        )
        usage = result.usage()
        assert all(v <= 3 for v in usage.values())
        assert sum(usage.values()) == len(r1)

    def test_fresh_tuples_absorb_overflow(self, instance):
        r1, r2 = instance
        result = solve_with_capacity(
            r1, r2, fk_column="hid", max_per_key=2
        )
        # 10 rows, cap 2 → at least 5 keys; R2 had 2.
        assert len(result.r2_hat) >= 5
        assert result.num_new_r2_tuples >= 3

    def test_dcs_and_capacity_together(self, instance):
        r1, r2 = instance
        dcs = [parse_dc("not(t1.Age < 33 & t2.Age < 33)")]
        result = solve_with_capacity(
            r1, r2, fk_column="hid", max_per_key=4, dcs=dcs
        )
        assert dc_error(result.r1_hat, "hid", dcs) == 0.0
        assert all(v <= 4 for v in result.usage().values())

    def test_ccs_still_pursued(self, instance):
        r1, r2 = instance
        ccs = [parse_cc("|Age in [30, 34] & Area == 'X'| = 5")]
        result = solve_with_capacity(
            r1, r2, fk_column="hid", max_per_key=3, ccs=ccs
        )
        assert result.errors.per_cc == [0.0]

    def test_histogram_helper(self, instance):
        r1, r2 = instance
        result = solve_with_capacity(r1, r2, fk_column="hid", max_per_key=3)
        histogram = fk_usage_histogram(result.r1_hat, "hid")
        assert sum(histogram.values()) == len(r1)
