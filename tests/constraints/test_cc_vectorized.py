"""Factorized CC counting (``count_in``/``count_ccs``) vs the naive path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.cc import CardinalityConstraint, count_ccs
from repro.relational.predicate import Interval, Predicate, ValueSet
from repro.relational.relation import Relation

AREAS = ["Chicago", "NYC", "LA"]
RELS = ["Owner", "Spouse", "Child"]


def _relation(n, seed):
    rng = np.random.default_rng(seed)
    return Relation.from_columns(
        {
            "pid": list(range(n)),
            "Age": rng.integers(0, 100, size=n).tolist(),
            "Rel": [RELS[i] for i in rng.integers(0, len(RELS), size=n)],
            "Area": [AREAS[i] for i in rng.integers(0, len(AREAS), size=n)],
        },
        key="pid",
    )


def _cc(lo, hi, area=None, rel=None, disjunct2=None, target=0):
    conditions = {"Age": Interval(lo, hi)}
    if area is not None:
        conditions["Area"] = ValueSet([area])
    if rel is not None:
        conditions["Rel"] = ValueSet(rel)
    disjuncts = [Predicate(conditions)]
    if disjunct2 is not None:
        disjuncts.append(disjunct2)
    return CardinalityConstraint(tuple(disjuncts), target)


class TestCountInEquivalence:
    def test_matches_naive_on_conjunctive_ccs(self):
        relation = _relation(500, seed=3)
        ccs = [
            _cc(0, 24),
            _cc(25, 64, area="Chicago"),
            _cc(65, 200, rel=["Owner", "Spouse"]),
        ]
        for cc in ccs:
            assert cc.count_in(relation) == cc.count_in_naive(relation)

    def test_matches_naive_on_disjunctive_cc(self):
        relation = _relation(300, seed=4)
        cc = _cc(
            0,
            17,
            area="NYC",
            disjunct2=Predicate(
                {"Age": Interval(80, 200), "Rel": ValueSet(["Owner"])}
            ),
        )
        assert cc.count_in(relation) == cc.count_in_naive(relation)

    def test_mask_in_equals_column_mask(self):
        relation = _relation(200, seed=5)
        cc = _cc(10, 40, area="LA")
        vectorized = cc.mask_in(relation)
        naive = cc.mask(relation.columns, len(relation))
        assert np.array_equal(vectorized, naive)

    def test_empty_relation(self):
        relation = _relation(0, seed=6)
        cc = _cc(0, 10)
        assert cc.count_in(relation) == 0

    def test_count_ccs_batch_matches_per_cc(self):
        relation = _relation(400, seed=7)
        ccs = [
            _cc(0, 24),
            _cc(0, 24),  # shared (attr, condition) pair hits the cache
            _cc(25, 64, area="Chicago"),
            _cc(0, 200, rel=["Child"]),
        ]
        batch = count_ccs(relation, ccs)
        assert batch == [cc.count_in_naive(relation) for cc in ccs]

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=50),
        lo=st.integers(min_value=0, max_value=60),
        span=st.integers(min_value=0, max_value=60),
        area=st.one_of(st.none(), st.sampled_from(AREAS)),
    )
    def test_hypothesis_intervals_match_naive(self, seed, lo, span, area):
        relation = _relation(120, seed=seed)
        cc = _cc(lo, lo + span, area=area)
        assert cc.count_in(relation) == cc.count_in_naive(relation)
