"""CardinalityConstraint basics."""

import pytest

from repro.constraints.cc import CardinalityConstraint, validate_cc_set
from repro.errors import ConstraintError
from repro.relational.predicate import Interval, Predicate, ValueSet


@pytest.fixture
def cc():
    return CardinalityConstraint(
        Predicate(
            {
                "Age": Interval(0, 24),
                "Rel": ValueSet(["Owner"]),
                "Area": ValueSet(["Chicago"]),
            }
        ),
        target=4,
        name="cc_test",
    )


class TestCardinalityConstraint:
    def test_negative_target_rejected(self):
        with pytest.raises(ConstraintError):
            CardinalityConstraint(Predicate({}), -1)

    def test_r1_r2_split(self, cc):
        r1_attrs, r2_attrs = {"Age", "Rel"}, {"Area"}
        assert cc.r1_part(r1_attrs).attributes == frozenset({"Age", "Rel"})
        assert cc.r2_part(r2_attrs).attributes == frozenset({"Area"})

    def test_validate_attrs(self, cc):
        cc.validate_attrs({"Age", "Rel"}, {"Area"})
        with pytest.raises(ConstraintError):
            cc.validate_attrs({"Age"}, {"Area"})

    def test_validate_cc_set(self, cc):
        validate_cc_set([cc], {"Age", "Rel"}, {"Area"})
        with pytest.raises(ConstraintError):
            validate_cc_set([cc], {"Age"}, set())

    def test_matches_row(self, cc):
        assert cc.matches_row({"Age": 20, "Rel": "Owner", "Area": "Chicago"})
        assert not cc.matches_row({"Age": 30, "Rel": "Owner", "Area": "Chicago"})

    def test_with_target(self, cc):
        assert cc.with_target(9).target == 9
        assert cc.with_target(9).predicate == cc.predicate

    def test_name_not_part_of_equality(self, cc):
        clone = CardinalityConstraint(cc.predicate, cc.target, name="other")
        assert clone == cc
