"""Definitions 4.2-4.4: disjoint / contained / intersecting CC pairs."""

import pytest

from repro.constraints.cc import CardinalityConstraint
from repro.constraints.parser import parse_cc
from repro.constraints.relationships import (
    CCRelationship,
    RelationshipTable,
    classify_pair,
)

R1_ATTRS = {"Age", "Rel", "Multi"}
R2_ATTRS = {"Area", "Tenure"}


def _cc(text: str, target: int = 1) -> CardinalityConstraint:
    return parse_cc(f"|{text}| = {target}")


def classify(a: str, b: str) -> CCRelationship:
    return classify_pair(_cc(a), _cc(b), R1_ATTRS, R2_ATTRS)


class TestClassifyPair:
    def test_disjoint_r1_parts(self):
        """Figure 6: CC1 ∩ CC2 = ∅ (disjoint ages)."""
        rel = classify(
            "Age in [10, 14] & Area == 'Chicago'",
            "Age in [50, 60] & Multi == 0 & Area == 'NYC'",
        )
        assert rel is CCRelationship.DISJOINT

    def test_disjoint_same_r1_different_r2(self):
        """Identical R1 parts with disjoint R2 parts are disjoint."""
        rel = classify(
            "Rel == 'Owner' & Area == 'Chicago'",
            "Rel == 'Owner' & Area == 'NYC'",
        )
        assert rel is CCRelationship.DISJOINT

    def test_containment_figure_6(self):
        """Figure 6: CC4 ⊆ CC3."""
        rel = classify(
            "Age in [18, 24] & Multi == 0 & Area == 'Chicago'",
            "Age in [13, 64] & Area == 'Chicago'",
        )
        assert rel is CCRelationship.CONTAINED_IN

    def test_contains_is_the_mirror(self):
        rel = classify(
            "Age in [13, 64] & Area == 'Chicago'",
            "Age in [18, 24] & Multi == 0 & Area == 'Chicago'",
        )
        assert rel is CCRelationship.CONTAINS

    def test_example_4_5_is_intersecting(self):
        """Overlapping ages with different areas (Example 4.5)."""
        rel = classify(
            "Age in [10, 49] & Area == 'Chicago'",
            "Age in [30, 70] & Area == 'NYC'",
        )
        assert rel is CCRelationship.INTERSECTING

    def test_overlapping_ages_same_area_intersect(self):
        rel = classify(
            "Age in [10, 49] & Area == 'Chicago'",
            "Age in [30, 70] & Area == 'Chicago'",
        )
        assert rel is CCRelationship.INTERSECTING

    def test_different_r1_attributes_intersect(self):
        """Rel=Owner vs Age<=24 (the running example's CC1 vs CC3)."""
        rel = classify(
            "Rel == 'Owner' & Area == 'Chicago'",
            "Age <= 24 & Area == 'Chicago'",
        )
        assert rel is CCRelationship.INTERSECTING

    def test_equal_predicates(self):
        rel = classify(
            "Rel == 'Owner' & Area == 'Chicago'",
            "Rel == 'Owner' & Area == 'Chicago'",
        )
        assert rel is CCRelationship.EQUAL

    def test_tenure_area_contained_in_area_only(self):
        rel = classify(
            "Rel == 'Owner' & Tenure == 'Owned' & Area == 'Chicago'",
            "Rel == 'Owner' & Area == 'Chicago'",
        )
        assert rel is CCRelationship.CONTAINED_IN


class TestRelationshipTable:
    def test_table_symmetry(self):
        ccs = [
            _cc("Age in [13, 64] & Area == 'Chicago'"),
            _cc("Age in [18, 24] & Multi == 0 & Area == 'Chicago'"),
        ]
        table = RelationshipTable.build(ccs, R1_ATTRS, R2_ATTRS)
        assert table.relationship(1, 0) is CCRelationship.CONTAINED_IN
        assert table.relationship(0, 1) is CCRelationship.CONTAINS
        assert table.relationship(0, 0) is CCRelationship.EQUAL

    def test_intersecting_indices(self):
        ccs = [
            _cc("Age in [10, 49] & Area == 'Chicago'"),
            _cc("Age in [30, 70] & Area == 'NYC'"),
            _cc("Rel == 'Owner' & Area == 'Chicago'"),
        ]
        table = RelationshipTable.build(ccs, R1_ATTRS, R2_ATTRS)
        assert table.intersecting_indices >= {0, 1}
        assert table.has_intersections()

    def test_equal_predicates_different_targets_intersect(self):
        ccs = [
            _cc("Rel == 'Owner' & Area == 'Chicago'", target=4),
            _cc("Rel == 'Owner' & Area == 'Chicago'", target=7),
        ]
        table = RelationshipTable.build(ccs, R1_ATTRS, R2_ATTRS)
        assert table.intersecting_indices == {0, 1}

    def test_contained_in_listing(self):
        ccs = [
            _cc("Age in [13, 64] & Area == 'Chicago'"),
            _cc("Age in [18, 24] & Multi == 0 & Area == 'Chicago'"),
        ]
        table = RelationshipTable.build(ccs, R1_ATTRS, R2_ATTRS)
        assert table.contained_in(1) == [0]
        assert table.contained_in(0) == []
