"""Disjunctive CC conditions (the extension Section 2 hints at)."""

import pytest

from repro import CExtensionSolver, Relation
from repro.constraints import (
    CCRelationship,
    CardinalityConstraint,
    classify_pair,
    parse_cc,
    parse_dnf,
)
from repro.errors import ConstraintError
from repro.relational.predicate import Interval, Predicate, ValueSet


def _dnf_cc(target=5):
    return parse_cc(
        "|Age in [0, 10] & Area == 'X' or Age in [60, 99] & Area == 'Y'|"
        f" = {target}"
    )


class TestConstruction:
    def test_parse_dnf(self):
        disjuncts = parse_dnf("Age in [0, 10] or Age in [60, 99]")
        assert len(disjuncts) == 2
        assert disjuncts[0].condition("Age") == Interval(0, 10)

    def test_parse_cc_disjunctive(self):
        cc = _dnf_cc()
        assert not cc.is_conjunctive
        assert len(cc.disjuncts) == 2
        assert cc.target == 5

    def test_single_disjunct_stays_conjunctive(self):
        cc = parse_cc("|Age in [0, 10] & Area == 'X'| = 3")
        assert cc.is_conjunctive
        assert cc.predicate.attributes == frozenset({"Age", "Area"})

    def test_predicate_accessor_guards_dnf(self):
        with pytest.raises(ConstraintError):
            _dnf_cc().predicate

    def test_empty_disjunct_list_rejected(self):
        with pytest.raises(ConstraintError):
            CardinalityConstraint([], 1)

    def test_attributes_union(self):
        assert _dnf_cc().attributes == frozenset({"Age", "Area"})


class TestEvaluation:
    def test_matches_row_is_or(self):
        cc = _dnf_cc()
        assert cc.matches_row({"Age": 5, "Area": "X"})
        assert cc.matches_row({"Age": 70, "Area": "Y"})
        assert not cc.matches_row({"Age": 5, "Area": "Y"})
        assert not cc.matches_row({"Age": 30, "Area": "X"})

    def test_count_in(self):
        view = Relation.from_columns(
            {"Age": [5, 70, 30, 8], "Area": ["X", "Y", "X", "Y"]}
        )
        assert _dnf_cc().count_in(view) == 2

    def test_split_disjuncts(self):
        cc = _dnf_cc()
        splits = cc.split_disjuncts({"Age"}, {"Area"})
        assert len(splits) == 2
        for r1_part, r2_part in splits:
            assert r1_part.attributes == frozenset({"Age"})
            assert r2_part.attributes == frozenset({"Area"})


class TestClassification:
    def test_dnf_pairs_default_to_intersecting(self):
        a = _dnf_cc()
        b = parse_cc("|Age in [0, 10] & Area == 'X'| = 2")
        rel = classify_pair(a, b, {"Age"}, {"Area"})
        assert rel is CCRelationship.INTERSECTING

    def test_dnf_disjoint_detected(self):
        a = _dnf_cc()
        b = parse_cc("|Age in [20, 40] & Area == 'X'| = 2")
        rel = classify_pair(a, b, {"Age"}, {"Area"})
        assert rel is CCRelationship.DISJOINT

    def test_equal_dnf(self):
        assert classify_pair(
            _dnf_cc(), _dnf_cc(), {"Age"}, {"Area"}
        ) is CCRelationship.EQUAL


class TestEndToEnd:
    @pytest.fixture
    def instance(self):
        r1 = Relation.from_columns(
            {
                "pid": list(range(12)),
                "Age": [5, 6, 7, 8, 40, 41, 42, 43, 70, 71, 72, 73],
            },
            key="pid",
        )
        r2 = Relation.from_columns(
            {"hid": [1, 2, 3, 4], "Area": ["X", "X", "Y", "Y"]}, key="hid"
        )
        return r1, r2

    def test_dnf_cc_satisfied_exactly(self, instance):
        r1, r2 = instance
        cc = _dnf_cc(6)
        result = CExtensionSolver().solve(r1, r2, fk_column="hid", ccs=[cc])
        assert result.report.errors.per_cc == [0.0]

    def test_dnf_routed_to_ilp(self, instance):
        r1, r2 = instance
        cc = _dnf_cc(6)
        result = CExtensionSolver().solve(r1, r2, fk_column="hid", ccs=[cc])
        assert result.phase1.s2_indices == [0]
        assert result.phase1.s1_indices == []

    def test_mix_of_dnf_and_conjunctive(self, instance):
        r1, r2 = instance
        ccs = [
            _dnf_cc(6),
            parse_cc("|Age in [40, 43] & Area == 'X'| = 2"),
        ]
        result = CExtensionSolver().solve(r1, r2, fk_column="hid", ccs=ccs)
        assert result.report.errors.per_cc == [0.0, 0.0]

    def test_dnf_with_dcs(self, instance):
        from repro.constraints import parse_dc
        from repro.core.metrics import dc_error

        r1, r2 = instance
        dcs = [parse_dc("not(t1.Age < 10 & t2.Age < 10)")]
        result = CExtensionSolver().solve(
            r1, r2, fk_column="hid", ccs=[_dnf_cc(6)], dcs=dcs
        )
        assert dc_error(result.r1_hat, "hid", dcs) == 0.0
