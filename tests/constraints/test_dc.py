"""Denial constraints: atoms, evaluation, violation counting."""

import pytest

from repro.constraints.dc import (
    BinaryAtom,
    DenialConstraint,
    UnaryAtom,
    count_violating_tuples,
)
from repro.errors import ConstraintError


@pytest.fixture
def dc_two_owners():
    return DenialConstraint(
        [UnaryAtom(0, "Rel", "==", "Owner"), UnaryAtom(1, "Rel", "==", "Owner")]
    )


@pytest.fixture
def dc_spouse_age():
    # ¬(t1=Owner ∧ t2=Spouse ∧ t2.Age < t1.Age - 50 ∧ same FK)
    return DenialConstraint(
        [
            UnaryAtom(0, "Rel", "==", "Owner"),
            UnaryAtom(1, "Rel", "==", "Spouse"),
            BinaryAtom(1, "Age", "<", 0, "Age", -50),
        ]
    )


class TestAtoms:
    def test_unary_unknown_op_rejected(self):
        with pytest.raises(ConstraintError):
            UnaryAtom(0, "Age", "~~", 5)

    def test_unary_in_operator(self):
        atom = UnaryAtom(0, "Rel", "in", ["a", "b"])
        assert atom.holds({"Rel": "a"})
        assert not atom.holds({"Rel": "c"})

    def test_binary_offset(self):
        atom = BinaryAtom(1, "Age", "<", 0, "Age", -50)
        assert atom.holds({"Age": 10}, {"Age": 75})  # 10 < 25
        assert not atom.holds({"Age": 30}, {"Age": 75})

    def test_negative_var_rejected(self):
        with pytest.raises(ConstraintError):
            UnaryAtom(-1, "Age", "==", 5)

    def test_reprs_are_one_indexed(self, dc_spouse_age):
        text = repr(dc_spouse_age)
        assert "t1.Rel" in text and "t2.Age" in text and "t1.FK = t2.FK" in text


class TestDenialConstraint:
    def test_arity_inferred(self, dc_spouse_age):
        assert dc_spouse_age.arity == 2

    def test_arity_must_be_at_least_two(self):
        with pytest.raises(ConstraintError):
            DenialConstraint([UnaryAtom(0, "Age", "==", 5)])

    def test_unknown_atom_type_rejected(self):
        with pytest.raises(ConstraintError):
            DenialConstraint(["not an atom", UnaryAtom(1, "A", "==", 1)])

    def test_structure_accessors(self, dc_spouse_age):
        assert len(dc_spouse_age.unary_atoms(0)) == 1
        assert len(dc_spouse_age.unary_atoms(1)) == 1
        assert len(dc_spouse_age.binary_atoms) == 1
        assert dc_spouse_age.attributes == frozenset({"Rel", "Age"})

    def test_violates_symmetric(self, dc_two_owners):
        owners = [{"Rel": "Owner"}, {"Rel": "Owner"}]
        assert dc_two_owners.violates(owners)
        assert not dc_two_owners.violates([{"Rel": "Owner"}, {"Rel": "Child"}])

    def test_violates_tries_both_orderings(self, dc_spouse_age):
        owner, spouse = {"Rel": "Owner", "Age": 75}, {"Rel": "Spouse", "Age": 10}
        # violation detected regardless of the order tuples are given in
        assert dc_spouse_age.violates([owner, spouse])
        assert dc_spouse_age.violates([spouse, owner])
        ok_spouse = {"Rel": "Spouse", "Age": 30}
        assert not dc_spouse_age.violates([owner, ok_spouse])

    def test_wrong_tuple_count(self, dc_two_owners):
        assert not dc_two_owners.violates([{"Rel": "Owner"}])

    def test_satisfied_by_assignment_strict_arity(self, dc_two_owners):
        with pytest.raises(ConstraintError):
            dc_two_owners.satisfied_by_assignment([{"Rel": "Owner"}])

    def test_ternary_dc(self):
        dc = DenialConstraint(
            [
                BinaryAtom(0, "Cls", "==", 1, "Cls"),
                BinaryAtom(1, "Cls", "==", 2, "Cls"),
            ],
            arity=3,
        )
        same = [{"Cls": "C1"}] * 3
        mixed = [{"Cls": "C1"}, {"Cls": "C1"}, {"Cls": "C2"}]
        assert dc.violates(same)
        assert not dc.violates(mixed)


class TestCountViolatingTuples:
    def test_paper_example(self, dc_two_owners):
        """Section 6.1: first two Persons tuples sharing hid=2 → error 2/9."""
        rows = [{"Rel": "Owner"}] * 2 + [{"Rel": "Child"}] * 7
        fks = [2, 2] + [i + 10 for i in range(7)]
        assert count_violating_tuples(rows, fks, [dc_two_owners]) == 2

    def test_no_violations(self, dc_two_owners):
        rows = [{"Rel": "Owner"}, {"Rel": "Owner"}]
        assert count_violating_tuples(rows, [1, 2], [dc_two_owners]) == 0

    def test_triangle_counts_each_tuple_once(self, dc_two_owners):
        rows = [{"Rel": "Owner"}] * 3
        assert count_violating_tuples(rows, [5, 5, 5], [dc_two_owners]) == 3
