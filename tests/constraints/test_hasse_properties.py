"""Property-based tests on Hasse forest structure."""

from hypothesis import given, settings, strategies as st

from repro.constraints.cc import CardinalityConstraint
from repro.constraints.hasse import HasseForest
from repro.constraints.relationships import CCRelationship, RelationshipTable
from repro.relational.predicate import Interval, Predicate, ValueSet

R1_ATTRS = {"Age"}
R2_ATTRS = {"Area"}


@st.composite
def _nested_ccs(draw):
    """Random interval CCs over one area — only containment/disjoint/
    intersecting relationships arise; the forest is built on the
    non-intersecting subset, as the hybrid does."""
    n = draw(st.integers(1, 8))
    ccs = []
    for k in range(n):
        lo = draw(st.integers(0, 60))
        hi = draw(st.integers(lo, 99))
        ccs.append(
            CardinalityConstraint(
                Predicate(
                    {"Age": Interval(lo, hi), "Area": ValueSet(["X"])}
                ),
                target=k,  # distinct targets keep equal predicates apart
            )
        )
    return ccs


def _non_intersecting_subset(table):
    return [
        i
        for i in range(len(table.ccs))
        if i not in table.intersecting_indices
    ]


class TestForestProperties:
    @settings(max_examples=50, deadline=None)
    @given(ccs=_nested_ccs())
    def test_nodes_partition_into_diagrams(self, ccs):
        table = RelationshipTable.build(ccs, R1_ATTRS, R2_ATTRS)
        indices = _non_intersecting_subset(table)
        forest = HasseForest.build(table, indices)
        seen = [n for d in forest.diagrams for n in d.nodes]
        assert sorted(seen) == sorted(indices)

    @settings(max_examples=50, deadline=None)
    @given(ccs=_nested_ccs())
    def test_edges_respect_containment(self, ccs):
        table = RelationshipTable.build(ccs, R1_ATTRS, R2_ATTRS)
        indices = _non_intersecting_subset(table)
        forest = HasseForest.build(table, indices)
        for diagram in forest.diagrams:
            for parent, child in diagram.edges:
                assert (
                    table.relationship(child, parent)
                    is CCRelationship.CONTAINED_IN
                )

    @settings(max_examples=50, deadline=None)
    @given(ccs=_nested_ccs())
    def test_covering_relation_has_no_shortcuts(self, ccs):
        """No edge may skip over an intermediate element."""
        table = RelationshipTable.build(ccs, R1_ATTRS, R2_ATTRS)
        indices = _non_intersecting_subset(table)
        forest = HasseForest.build(table, indices)
        for diagram in forest.diagrams:
            for parent, child in diagram.edges:
                for k in diagram.nodes:
                    if k in (parent, child):
                        continue
                    between = (
                        table.relationship(child, k)
                        is CCRelationship.CONTAINED_IN
                        and table.relationship(k, parent)
                        is CCRelationship.CONTAINED_IN
                    )
                    assert not between, (parent, k, child)

    @settings(max_examples=50, deadline=None)
    @given(ccs=_nested_ccs())
    def test_each_diagram_has_a_maximal_element(self, ccs):
        table = RelationshipTable.build(ccs, R1_ATTRS, R2_ATTRS)
        indices = _non_intersecting_subset(table)
        forest = HasseForest.build(table, indices)
        for diagram in forest.diagrams:
            assert diagram.maximal_elements()
