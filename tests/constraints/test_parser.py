"""The constraint DSL parser."""

import pytest

from repro.constraints.dc import BinaryAtom, UnaryAtom
from repro.constraints.parser import parse_cc, parse_dc, parse_predicate
from repro.errors import ParseError
from repro.relational.predicate import Interval, ValueSet
from repro.relational.types import CatDomain, IntDomain


class TestParsePredicate:
    def test_simple_equality(self):
        p = parse_predicate("Rel == 'Owner'")
        assert p.condition("Rel") == ValueSet(["Owner"])

    def test_bareword_value(self):
        p = parse_predicate("Rel == Owner")
        assert p.condition("Rel") == ValueSet(["Owner"])

    def test_multiword_bareword_value(self):
        p = parse_predicate("Rel == Biological child")
        assert p.condition("Rel") == ValueSet(["Biological child"])

    def test_interval_syntax(self):
        p = parse_predicate("Age in [10, 14]")
        assert p.condition("Age") == Interval(10, 14)

    def test_comparison_with_domain(self):
        p = parse_predicate("Age > 24", domains={"Age": IntDomain(0, 114)})
        assert p.condition("Age") == Interval(25, 114)

    def test_conjunction(self):
        p = parse_predicate("Age <= 24 & Rel == 'Owner' & Multi == 1")
        assert p.attributes == frozenset({"Age", "Rel", "Multi"})

    def test_repeated_attribute_intersects(self):
        p = parse_predicate("Age >= 10 & Age <= 20")
        assert p.condition("Age") == Interval(10, 20)

    def test_contradiction_rejected(self):
        with pytest.raises(ParseError):
            parse_predicate("Age <= 10 & Age >= 20")

    def test_not_equal_with_domain(self):
        p = parse_predicate(
            "Rel != 'Owner'", domains={"Rel": CatDomain(["Owner", "Child"])}
        )
        assert p.condition("Rel") == ValueSet(["Child"])

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_predicate("&& ==")

    def test_missing_value_rejected(self):
        with pytest.raises(ParseError):
            parse_predicate("Age ==")


class TestParseCc:
    def test_basic(self):
        cc = parse_cc("|Rel == 'Owner' & Area == 'Chicago'| = 4")
        assert cc.target == 4
        assert cc.predicate.attributes == frozenset({"Rel", "Area"})

    def test_double_equals_accepted(self):
        assert parse_cc("|Age in [0, 5]| == 7").target == 7

    def test_name_attached(self):
        assert parse_cc("|Age in [0, 5]| = 7", name="cc9").name == "cc9"

    def test_bad_shape_rejected(self):
        with pytest.raises(ParseError):
            parse_cc("Rel == 'Owner' = 4")
        with pytest.raises(ParseError):
            parse_cc("|Rel == 'Owner'| = many")


class TestParseDc:
    def test_unary_atoms(self):
        dc = parse_dc("not(t1.Rel == 'Owner' & t2.Rel == 'Owner')")
        assert dc.arity == 2
        assert all(isinstance(a, UnaryAtom) for a in dc.atoms)

    def test_binary_atom_with_offset(self):
        dc = parse_dc(
            "not(t1.Rel == 'Owner' & t2.Rel == 'Spouse' & t2.Age < t1.Age - 50)"
        )
        binary = dc.binary_atoms[0]
        assert isinstance(binary, BinaryAtom)
        assert binary.left_var == 1 and binary.right_var == 0
        assert binary.offset == -50

    def test_positive_offset(self):
        dc = parse_dc("not(t1.Rel == 'Owner' & t2.Age > t1.Age + 50)")
        assert dc.binary_atoms[0].offset == 50

    def test_explicit_fk_atom_dropped(self):
        dc = parse_dc(
            "not(t1.Rel == 'Owner' & t2.Rel == 'Owner' & t1.hid == t2.hid)",
            fk_column="hid",
        )
        assert len(dc.atoms) == 2

    def test_integer_value(self):
        dc = parse_dc("not(t1.Multi == 1 & t2.Multi == 1)")
        assert dc.atoms[0].value == 1

    def test_arity_three(self):
        dc = parse_dc("not(t1.Cls == t2.Cls & t2.Cls == t3.Cls)")
        assert dc.arity == 3

    def test_name(self):
        dc = parse_dc("not(t1.A == 1 & t2.A == 1)", name="mydc")
        assert dc.name == "mydc"

    def test_bad_shapes_rejected(self):
        with pytest.raises(ParseError):
            parse_dc("t1.Rel == 'Owner'")
        with pytest.raises(ParseError):
            parse_dc("not(Rel == 'Owner' & t2.Rel == 'Owner')")
        with pytest.raises(ParseError):
            parse_dc("not(t1.Rel)")
        with pytest.raises(ParseError):
            parse_dc("not(t1.hid == t2.hid)", fk_column="hid")

    def test_round_trip_against_semantics(self):
        dc = parse_dc(
            "not(t1.Rel == 'Owner' & t2.Rel == 'Spouse' & t2.Age < t1.Age - 50)"
        )
        owner = {"Rel": "Owner", "Age": 75}
        young = {"Rel": "Spouse", "Age": 20}
        old = {"Rel": "Spouse", "Age": 30}
        assert dc.violates([owner, young])
        assert not dc.violates([owner, old])
