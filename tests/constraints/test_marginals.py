"""Marginal augmentation helpers."""

from repro.constraints.intervalize import build_binning
from repro.constraints.marginals import marginal_constraints, relevant_bins
from repro.constraints.parser import parse_cc
from repro.relational.relation import Relation


def _setup():
    r1 = Relation.from_columns(
        {
            "pid": [1, 2, 3, 4],
            "Age": [10, 20, 30, 40],
            "Rel": ["Owner", "Owner", "Child", "Child"],
        },
        key="pid",
    )
    ccs = [parse_cc("|Age in [0, 19] & Rel == 'Owner' & Area == 'x'| = 1")]
    binning = build_binning(r1, ["Age", "Rel"], ccs)
    return r1, ccs, binning


def test_marginal_constraints_cover_all_rows():
    r1, ccs, binning = _setup()
    counts = binning.bin_counts(r1)
    marginals = marginal_constraints(binning, counts)
    assert sum(m.target for m in marginals) == len(r1)
    # Each marginal predicate matches exactly its bin's rows.
    for marginal in marginals:
        assert r1.count(marginal.predicate.restrict(["Age", "Rel"])) == marginal.target


def test_marginal_names_are_stable():
    r1, ccs, binning = _setup()
    counts = binning.bin_counts(r1)
    names = [m.name for m in marginal_constraints(binning, counts)]
    assert all(n.startswith("marginal:") for n in names)
    assert names == sorted(names, key=str)


def test_relevant_bins_limits_scope():
    r1, ccs, binning = _setup()
    counts = binning.bin_counts(r1)
    relevant = relevant_bins(binning, counts.keys(), ccs, {"Age", "Rel"})
    # only the (Age<=19, Owner) bin can contribute to the CC
    assert len(relevant) == 1
    for key in relevant:
        assert binning.bin_matches(key, ccs[0].r1_part({"Age", "Rel"}))


def test_relevant_bins_empty_for_no_ccs():
    r1, ccs, binning = _setup()
    counts = binning.bin_counts(r1)
    assert relevant_bins(binning, counts.keys(), [], {"Age", "Rel"}) == set()
