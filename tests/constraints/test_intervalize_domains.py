"""Binning against explicit integer domains (the widening path)."""

import numpy as np
import pytest

from repro.constraints.intervalize import build_binning
from repro.constraints.parser import parse_cc
from repro.errors import ConstraintError
from repro.relational.relation import Relation
from repro.relational.types import IntDomain


def _r1(ages):
    return Relation.from_columns(
        {"pid": list(range(len(ages))), "Age": ages}, key="pid"
    )


class TestDomainWidening:
    def test_domain_extends_observed_range(self):
        r1 = _r1([30, 40])
        cc = parse_cc("|Age in [20, 50] & Area == 'X'| = 1")
        binning = build_binning(
            r1, ["Age"], [cc], domains={"Age": IntDomain(0, 114)}
        )
        intervals = binning.intervals("Age")
        assert intervals[0].lo == 0
        assert intervals[-1].hi == 114

    def test_without_domain_uses_observed_bounds(self):
        r1 = _r1([30, 40])
        cc = parse_cc("|Age in [32, 35] & Area == 'X'| = 1")
        binning = build_binning(r1, ["Age"], [cc])
        assert binning.intervals("Age")[0].lo == 30
        assert binning.intervals("Age")[-1].hi == 40

    def test_out_of_domain_value_rejected(self):
        r1 = _r1([30, 40])
        cc = parse_cc("|Age in [32, 35] & Area == 'X'| = 1")
        binning = build_binning(r1, ["Age"], [cc])
        lower = _r1([10])  # below the binning's first start point
        with pytest.raises(ConstraintError):
            binning.bin_keys(lower)

    def test_endpoints_outside_domain_fall_back_to_values(self):
        r1 = _r1([30, 40])
        # The CC's interval covers all data, so no cut lands inside the
        # domain — the attribute falls back to raw-value binning (which
        # is exact: every value trivially lies inside the CC interval).
        cc = parse_cc("|Age in [0, 500] & Area == 'X'| = 1")
        binning = build_binning(r1, ["Age"], [cc])
        assert not binning.is_numeric("Age")
        assert len(binning.bin_counts(r1)) == 2  # one bin per value
