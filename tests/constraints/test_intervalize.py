"""Intervalization and binning (Section 4.1, Example 4.1)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.constraints.intervalize import build_binning
from repro.constraints.parser import parse_cc, parse_predicate
from repro.relational.predicate import Interval
from repro.relational.relation import Relation


@pytest.fixture
def example_4_1():
    """Figure 1's relation and CC3's Age <= 24 cut."""
    r1 = Relation.from_columns(
        {
            "pid": [1, 2, 3, 4, 5, 6, 7, 8, 9],
            "Age": [75, 75, 25, 25, 24, 10, 10, 30, 30],
            "Rel": ["Owner"] * 4 + ["Spouse", "Child", "Child", "Owner", "Owner"],
            "Multi": [0, 1, 0, 1, 0, 1, 1, 0, 1],
        },
        key="pid",
    )
    ccs = [
        parse_cc("|Rel == 'Owner' & Area == 'Chicago'| = 4"),
        parse_cc("|Age <= 24 & Area == 'Chicago'| = 3"),
    ]
    return r1, ccs


class TestBuildBinning:
    def test_age_split_at_25(self, example_4_1):
        """Example 4.1: Age splits into [., 24] and [25, .]."""
        r1, ccs = example_4_1
        binning = build_binning(r1, ["Age", "Rel", "Multi"], ccs)
        intervals = binning.intervals("Age")
        assert len(intervals) == 2
        assert intervals[0].hi == 24
        assert intervals[1].lo == 25

    def test_categorical_attrs_not_intervalized(self, example_4_1):
        r1, ccs = example_4_1
        binning = build_binning(r1, ["Age", "Rel", "Multi"], ccs)
        assert not binning.is_numeric("Rel")
        assert binning.is_numeric("Age")
        # No CC cuts Multi-ling, so it stays at raw-value granularity
        # (Example 4.1 lists Multi-ling 0 and 1 as separate tuple types).
        assert not binning.is_numeric("Multi")

    def test_bin_counts_partition_r1(self, example_4_1):
        r1, ccs = example_4_1
        binning = build_binning(r1, ["Age", "Rel", "Multi"], ccs)
        counts = binning.bin_counts(r1)
        assert sum(counts.values()) == len(r1)

    def test_example_4_1_bin_count(self, example_4_1):
        """Example 4.1 tracks exactly the distinct binned tuple types."""
        r1, ccs = example_4_1
        binning = build_binning(r1, ["Age", "Rel", "Multi"], ccs)
        counts = binning.bin_counts(r1)
        # (25-114, Owner, 0) x2+... Example 4.1 lists 4 types but Multi-ling
        # binning keeps 0/1 separate for spouse/child rows too.
        predicate = parse_predicate("Age >= 25 & Rel == 'Owner' & Multi == 0")
        matching = [
            key for key in counts if binning.bin_matches(key, predicate)
        ]
        assert len(matching) == 1
        assert counts[matching[0]] == 3  # pids 1, 3 and 8 (ages 75, 25, 30)

    def test_bin_members_track_indices(self, example_4_1):
        r1, ccs = example_4_1
        binning = build_binning(r1, ["Age", "Rel", "Multi"], ccs)
        members = binning.bin_members(r1)
        total = sorted(i for rows in members.values() for i in rows)
        assert total == list(range(9))

    def test_bin_members_with_subset(self, example_4_1):
        r1, ccs = example_4_1
        binning = build_binning(r1, ["Age", "Rel", "Multi"], ccs)
        members = binning.bin_members(r1, np.asarray([0, 1, 2]))
        assert sorted(i for rows in members.values() for i in rows) == [0, 1, 2]

    def test_bin_predicate_round_trip(self, example_4_1):
        r1, ccs = example_4_1
        binning = build_binning(r1, ["Age", "Rel", "Multi"], ccs)
        members = binning.bin_members(r1)
        for key, rows in members.items():
            predicate = binning.bin_predicate(key)
            for row_index in rows:
                assert predicate.matches_row(r1.row(row_index))


class TestBinMatchesExactness:
    @given(
        ages=st.lists(st.integers(0, 99), min_size=1, max_size=30),
        lo=st.integers(0, 99),
        width=st.integers(0, 40),
    )
    def test_bins_never_straddle_cc_endpoints(self, ages, lo, width):
        """Every bin is wholly inside or outside each CC interval."""
        hi = min(99, lo + width)
        r1 = Relation.from_columns(
            {"pid": list(range(len(ages))), "Age": ages}, key="pid"
        )
        cc = parse_cc(f"|Age in [{lo}, {hi}] & Area == 'x'| = 0")
        binning = build_binning(r1, ["Age"], [cc])
        members = binning.bin_members(r1)
        condition = Interval(lo, hi)
        for key, rows in members.items():
            inside = [condition.matches(ages[i]) for i in rows]
            assert all(inside) or not any(inside)
            # And bin_matches agrees with the row-level evaluation.
            predicate = cc.r1_part({"Age"})
            assert binning.bin_matches(key, predicate) == all(inside)
