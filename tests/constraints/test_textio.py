"""Constraint text IO: ``in {…}`` atoms and table-scoped sections."""

import pytest

from repro.constraints.dc import DenialConstraint, UnaryAtom
from repro.constraints.parser import parse_cc, parse_dc, parse_predicate
from repro.constraints.textio import (
    dump_constraint_sections,
    dump_constraints,
    format_cc,
    format_dc,
    load_constraint_sections,
    load_constraints,
)
from repro.datagen.constraints_census import all_dcs
from repro.errors import ParseError
from repro.relational.predicate import ValueSet


class TestInAtoms:
    def test_parse_dc_in_set(self):
        dc = parse_dc(
            "not(t1.Rel == 'Owner' & t2.Rel in {'Step child', 'Foster child'})"
        )
        atom = dc.atoms[1]
        assert isinstance(atom, UnaryAtom)
        assert atom.op == "in"
        assert atom.value == ("Step child", "Foster child")

    def test_parse_dc_in_set_integers(self):
        dc = parse_dc("not(t1.Multi-ling in {0, 1} & t2.Age > 5)")
        assert dc.atoms[0].value == (0, 1)

    def test_format_dc_in_round_trips(self):
        text = "not(t1.Rel == 'Owner' & t2.Rel in {'A', 'B'})"
        dc = parse_dc(text)
        assert parse_dc(format_dc(dc)) == dc

    def test_frozenset_value_serialised_deterministically(self):
        dc = DenialConstraint(
            [
                UnaryAtom(0, "Rel", "==", "Owner"),
                UnaryAtom(1, "Rel", "in", frozenset({"B", "A"})),
            ]
        )
        assert "in {'A', 'B'}" in format_dc(dc)

    def test_empty_value_set_rejected(self):
        with pytest.raises(ParseError):
            parse_dc("not(t1.Rel in {} & t2.Rel == 'X')")

    def test_predicate_value_set(self):
        predicate = parse_predicate("Rel in {'Owner', 'Spouse'} & Age <= 30")
        cond = predicate.condition("Rel")
        assert isinstance(cond, ValueSet)
        assert cond.values == frozenset({"Owner", "Spouse"})

    def test_cc_with_value_set_round_trips(self):
        cc = parse_cc("|Rel in {'Owner', 'Spouse'} & Area == 'X'| = 7")
        assert parse_cc(format_cc(cc)) == cc

    def test_census_all_dcs_round_trip(self, tmp_path):
        """Satellite acceptance: no census DC is dropped any more."""
        dcs = all_dcs()
        path = tmp_path / "c.txt"
        written = dump_constraints(path, [], dcs)
        assert written == len(dcs)  # 0 skipped
        _, loaded = load_constraints(path)
        assert loaded == dcs


class TestSections:
    def test_sectioned_round_trip(self, tmp_path):
        sections = {
            None: ([parse_cc("|Age <= 3 & Area == 'X'| = 1")], []),
            ("Students", "major_id", "Majors"): (
                [parse_cc("|Year == 1 & MName == 'CS'| = 5")],
                [],
            ),
            ("Majors", "dept_id", "Departments"): (
                [],
                [parse_dc("not(t1.MName == 'CS' & t2.MName == 'Math')")],
            ),
        }
        path = tmp_path / "c.txt"
        written = dump_constraint_sections(path, sections)
        assert written == 1
        loaded = load_constraint_sections(path)
        assert set(loaded) == set(sections)
        for key, (ccs, dcs) in sections.items():
            assert loaded[key][0] == ccs
            assert loaded[key][1] == dcs

    def test_flat_load_merges_sections(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text(
            "cc: |Age <= 3 & Area == 'X'| = 1\n"
            "[Students.major_id -> Majors]\n"
            "cc: |Year == 1 & MName == 'CS'| = 5\n"
        )
        ccs, dcs = load_constraints(path)
        assert len(ccs) == 2 and not dcs

    def test_bad_header_is_a_parse_error(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("[not a header\n")
        with pytest.raises(ParseError):
            load_constraints(path)


class TestQuoting:
    def test_ampersand_inside_quoted_value_round_trips(self, tmp_path):
        dc = parse_dc("not(t1.Rel == 'Owner' & t2.Shop in {'B&B', 'Inn'})")
        assert dc.atoms[1].value == ("B&B", "Inn")
        assert parse_dc(format_dc(dc)) == dc
        path = tmp_path / "c.txt"
        assert dump_constraints(path, [], [dc]) == 1
        _, loaded = load_constraints(path)
        assert loaded == [dc]

    def test_single_quote_value_uses_double_quotes(self):
        dc = DenialConstraint(
            [
                UnaryAtom(0, "Name", "==", "O'Brien"),
                UnaryAtom(1, "Name", "==", "X"),
            ]
        )
        text = format_dc(dc)
        assert '"O\'Brien"' in text
        assert parse_dc(text) == dc

    def test_both_quote_kinds_skipped_not_crashed(self, tmp_path):
        bad = DenialConstraint(
            [
                UnaryAtom(0, "Name", "==", "both ' and \" quotes"),
                UnaryAtom(1, "Name", "==", "X"),
            ]
        )
        good = parse_dc("not(t1.Age < 3 & t2.Age < 3)")
        path = tmp_path / "c.txt"
        assert dump_constraints(path, [], [bad, good]) == 1
        _, loaded = load_constraints(path)
        assert loaded == [good]
