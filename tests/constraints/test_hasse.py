"""Hasse diagram construction over CC containment (Figure 6)."""

import pytest

from repro.constraints.hasse import HasseForest
from repro.constraints.parser import parse_cc
from repro.constraints.relationships import RelationshipTable
from repro.errors import ConstraintError

R1_ATTRS = {"Age", "Rel", "Multi"}
R2_ATTRS = {"Area", "Tenure"}


def _forest(texts):
    ccs = [parse_cc(t) for t in texts]
    table = RelationshipTable.build(ccs, R1_ATTRS, R2_ATTRS)
    return HasseForest.build(table, range(len(ccs)))


class TestFigure6:
    """CC1, CC2 singletons; CC3 ⊇ CC4 — three diagrams, one edge."""

    def setup_method(self):
        self.forest = _forest(
            [
                "|Age in [10, 14] & Area == 'Chicago'| = 20",
                "|Age in [50, 60] & Multi == 0 & Area == 'NYC'| = 25",
                "|Age in [13, 64] & Area == 'Chicago'| = 100",
                "|Age in [18, 24] & Multi == 0 & Area == 'Chicago'| = 16",
            ]
        )

    def test_three_diagrams(self):
        assert len(self.forest.diagrams) == 3
        assert self.forest.node_count == 4
        assert self.forest.edge_count == 1

    def test_edge_direction(self):
        diagram = next(d for d in self.forest.diagrams if len(d.nodes) == 2)
        assert diagram.edges == [(2, 3)]  # CC3 covers CC4
        assert diagram.maximal_element() == 2

    def test_subdiagram(self):
        diagram = next(d for d in self.forest.diagrams if len(d.nodes) == 2)
        sub = diagram.subdiagram(3)
        assert sub.nodes == [3]
        assert sub.maximal_element() == 3


class TestCoveringRelation:
    def test_transitive_edge_removed(self):
        """A ⊇ B ⊇ C must not create a direct A→C edge."""
        forest = _forest(
            [
                "|Age in [0, 50] & Area == 'Chicago'| = 50",
                "|Age in [10, 30] & Area == 'Chicago'| = 20",
                "|Age in [12, 20] & Area == 'Chicago'| = 5",
            ]
        )
        (diagram,) = forest.diagrams
        assert sorted(diagram.edges) == [(0, 1), (1, 2)]
        assert diagram.maximal_element() == 0

    def test_two_children_one_parent(self):
        forest = _forest(
            [
                "|Age in [0, 50] & Area == 'Chicago'| = 50",
                "|Age in [0, 10] & Area == 'Chicago'| = 20",
                "|Age in [20, 30] & Area == 'Chicago'| = 5",
            ]
        )
        (diagram,) = forest.diagrams
        assert sorted(diagram.edges) == [(0, 1), (0, 2)]

    def test_all_disjoint_gives_singletons(self):
        forest = _forest(
            [
                "|Age in [0, 9] & Area == 'Chicago'| = 1",
                "|Age in [10, 19] & Area == 'Chicago'| = 2",
                "|Age in [20, 29] & Area == 'Chicago'| = 3",
            ]
        )
        assert len(forest.diagrams) == 3
        assert forest.edge_count == 0

    def test_multiple_maximal_elements_raise(self):
        forest = _forest(
            [
                "|Age in [0, 9] & Area == 'Chicago'| = 1",
                "|Age in [10, 19] & Area == 'Chicago'| = 2",
            ]
        )
        diagram = forest.diagrams[0]
        assert diagram.maximal_element() in (0, 1)
        merged = type(diagram)(
            nodes=[0, 1], children={0: [], 1: []}, parents={0: [], 1: []}
        )
        with pytest.raises(ConstraintError):
            merged.maximal_element()
