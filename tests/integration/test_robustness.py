"""Robustness: degenerate inputs, string keys, inconsistent constraints."""

import pytest

from repro import CExtensionSolver, Relation, SolverConfig, parse_cc, parse_dc
from repro.core.metrics import dc_error
from repro.relational.relation import Relation


class TestDegenerateInputs:
    def test_single_row_r1(self):
        r1 = Relation.from_columns({"pid": [1], "Age": [30]}, key="pid")
        r2 = Relation.from_columns({"hid": [1], "Area": ["X"]}, key="hid")
        result = CExtensionSolver().solve(r1, r2, fk_column="hid")
        assert list(result.r1_hat.column("hid")) == [1]

    def test_empty_r1(self):
        r1 = Relation.from_columns({"pid": [], "Age": []}, key="pid")
        r2 = Relation.from_columns({"hid": [1], "Area": ["X"]}, key="hid")
        result = CExtensionSolver().solve(r1, r2, fk_column="hid")
        assert len(result.r1_hat) == 0
        assert len(result.r2_hat) == 1

    def test_single_key_r2_with_conflicting_rows(self):
        """Conflicting rows with one key force fresh tuples, never errors."""
        r1 = Relation.from_columns(
            {"pid": [1, 2, 3, 4], "Rel": ["Owner"] * 4}, key="pid"
        )
        r2 = Relation.from_columns({"hid": [1], "Area": ["X"]}, key="hid")
        dcs = [parse_dc("not(t1.Rel == 'Owner' & t2.Rel == 'Owner')")]
        result = CExtensionSolver().solve(r1, r2, fk_column="hid", dcs=dcs)
        assert dc_error(result.r1_hat, "hid", dcs) == 0.0
        assert len(result.r2_hat) == 4

    def test_r2_with_duplicate_combos(self):
        """Multiple keys sharing one combo are one partition, many colors."""
        r1 = Relation.from_columns(
            {"pid": [1, 2, 3], "Rel": ["Owner"] * 3}, key="pid"
        )
        r2 = Relation.from_columns(
            {"hid": [1, 2, 3], "Area": ["X", "X", "X"]}, key="hid"
        )
        dcs = [parse_dc("not(t1.Rel == 'Owner' & t2.Rel == 'Owner')")]
        result = CExtensionSolver().solve(r1, r2, fk_column="hid", dcs=dcs)
        assert len(set(result.r1_hat.column("hid"))) == 3
        assert result.phase2.stats.num_new_r2_tuples == 0

    def test_r1_with_a_single_attribute(self):
        r1 = Relation.from_columns({"Age": [1, 2, 3]})
        r2 = Relation.from_columns({"hid": [1], "Area": ["X"]}, key="hid")
        result = CExtensionSolver().solve(r1, r2, fk_column="hid")
        assert len(result.r1_hat) == 3


class TestStringKeys:
    def test_string_fk_end_to_end(self):
        """Keys need not be integers; fresh keys become synthetic names."""
        r1 = Relation.from_columns(
            {"pid": [1, 2, 3], "Rel": ["Owner", "Owner", "Owner"]},
            key="pid",
        )
        r2 = Relation.from_columns(
            {"hid": ["h-alpha", "h-beta"], "Area": ["X", "X"]}, key="hid"
        )
        dcs = [parse_dc("not(t1.Rel == 'Owner' & t2.Rel == 'Owner')")]
        result = CExtensionSolver().solve(r1, r2, fk_column="hid", dcs=dcs)
        assert dc_error(result.r1_hat, "hid", dcs) == 0.0
        keys = set(result.r1_hat.column("hid"))
        assert len(keys) == 3
        fresh = keys - {"h-alpha", "h-beta"}
        assert all(str(k).startswith("synthetic_") for k in fresh)

    def test_string_keys_with_ccs(self):
        r1 = Relation.from_columns(
            {"pid": [1, 2, 3, 4], "Age": [10, 20, 30, 40]}, key="pid"
        )
        r2 = Relation.from_columns(
            {"hid": ["a", "b"], "Area": ["X", "Y"]}, key="hid"
        )
        ccs = [parse_cc("|Age <= 20 & Area == 'X'| = 2")]
        result = CExtensionSolver().solve(r1, r2, fk_column="hid", ccs=ccs)
        assert result.report.errors.per_cc == [0.0]


class TestInconsistentConstraints:
    def test_contradictory_cc_pair_absorbed(self):
        """Equal predicates, different targets: soft mode splits the error."""
        r1 = Relation.from_columns(
            {"pid": list(range(10)), "Age": [25] * 10}, key="pid"
        )
        r2 = Relation.from_columns(
            {"hid": [1, 2], "Area": ["X", "Y"]}, key="hid"
        )
        ccs = [
            parse_cc("|Age == 25 & Area == 'X'| = 3"),
            parse_cc("|Age == 25 & Area == 'X'| = 7"),
        ]
        result = CExtensionSolver().solve(r1, r2, fk_column="hid", ccs=ccs)
        achieved = ccs[0].count_in(result.join_view())
        assert 3 <= achieved <= 7  # lands between the two demands
        assert result.report.errors.dc_error == 0.0

    def test_over_demanding_cc_takes_all_available(self):
        r1 = Relation.from_columns(
            {"pid": [1, 2], "Age": [25, 25]}, key="pid"
        )
        r2 = Relation.from_columns({"hid": [1], "Area": ["X"]}, key="hid")
        ccs = [parse_cc("|Age == 25 & Area == 'X'| = 50")]
        result = CExtensionSolver().solve(r1, r2, fk_column="hid", ccs=ccs)
        assert ccs[0].count_in(result.join_view()) == 2

    def test_zero_target_cc_keeps_rows_away(self):
        r1 = Relation.from_columns(
            {"pid": [1, 2], "Age": [25, 25]}, key="pid"
        )
        r2 = Relation.from_columns(
            {"hid": [1, 2], "Area": ["X", "Y"]}, key="hid"
        )
        ccs = [parse_cc("|Age == 25 & Area == 'X'| = 0")]
        result = CExtensionSolver().solve(r1, r2, fk_column="hid", ccs=ccs)
        assert ccs[0].count_in(result.join_view()) == 0


class TestCrossCheckWithNetworkx:
    def test_partition_coloring_is_proper_per_networkx(
        self, census_small, census_all_dcs
    ):
        """Validate our coloring against networkx's independent checker."""
        import networkx as nx

        from repro.phase1.hybrid import run_phase1
        from repro.phase2.edges import build_conflict_graph
        from repro.phase2.fk_assignment import run_phase2

        r1 = census_small.persons_masked
        phase1 = run_phase1(r1, census_small.housing, [])
        phase2 = run_phase2(
            r1, census_small.housing, census_all_dcs,
            phase1.assignment, phase1.catalog, "hid",
        )
        # Rebuild the binary conflict edges as a networkx graph and check
        # no edge is monochromatic under our coloring.
        graph = build_conflict_graph(
            r1, census_all_dcs, range(len(r1))
        )
        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(graph.vertices)
        for edge in graph.edges:
            if len(edge) == 2:
                nx_graph.add_edge(*edge)
        coloring = phase2.coloring
        # Group rows by assigned key: each key's household must be an
        # independent set of the global conflict graph.
        by_key = {}
        for v, key in coloring.items():
            by_key.setdefault(key, []).append(v)
        for members in by_key.values():
            sub = nx_graph.subgraph(members)
            assert sub.number_of_edges() == 0
