"""Property-based end-to-end tests on random tiny instances."""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import CExtensionSolver, SolverConfig
from repro.constraints.cc import CardinalityConstraint
from repro.constraints.dc import DenialConstraint, UnaryAtom
from repro.core.metrics import dc_error, evaluate
from repro.relational.predicate import Interval, Predicate, ValueSet
from repro.relational.relation import Relation

_RELS = ["Owner", "Spouse", "Child"]
_AREAS = ["A", "B"]


def _instance(ages, rels, areas):
    r1 = Relation.from_columns(
        {"pid": list(range(len(ages))), "Age": ages, "Rel": rels}, key="pid"
    )
    r2 = Relation.from_columns(
        {"hid": list(range(len(areas))), "Area": areas}, key="hid"
    )
    return r1, r2


@st.composite
def _instances(draw):
    n = draw(st.integers(2, 10))
    ages = draw(st.lists(st.integers(0, 99), min_size=n, max_size=n))
    rels = draw(
        st.lists(st.sampled_from(_RELS), min_size=n, max_size=n)
    )
    m = draw(st.integers(1, 5))
    areas = draw(
        st.lists(st.sampled_from(_AREAS), min_size=m, max_size=m)
    )
    return ages, rels, areas


@st.composite
def _dcs(draw):
    out = []
    for _ in range(draw(st.integers(0, 2))):
        rel_a = draw(st.sampled_from(_RELS))
        rel_b = draw(st.sampled_from(_RELS))
        out.append(
            DenialConstraint(
                [
                    UnaryAtom(0, "Rel", "==", rel_a),
                    UnaryAtom(1, "Rel", "==", rel_b),
                ]
            )
        )
    return out


class TestPipelineInvariants:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(instance=_instances(), dcs=_dcs(), data=st.data())
    def test_dcs_always_satisfied_and_join_consistent(
        self, instance, dcs, data
    ):
        """DC error is zero and R1̂ ⋈ R2̂ is well-formed on any input."""
        ages, rels, areas = instance
        r1, r2 = _instance(ages, rels, areas)

        # A random CC over the instance (target sampled within range).
        ccs = []
        if data.draw(st.booleans()):
            lo = data.draw(st.integers(0, 99))
            hi = data.draw(st.integers(lo, 99))
            area = data.draw(st.sampled_from(_AREAS))
            target = data.draw(st.integers(0, len(ages)))
            ccs.append(
                CardinalityConstraint(
                    Predicate(
                        {"Age": Interval(lo, hi), "Area": ValueSet([area])}
                    ),
                    target,
                )
            )

        result = CExtensionSolver().solve(
            r1, r2, fk_column="hid", ccs=ccs, dcs=dcs
        )
        # 1. Every DC satisfied, always.
        assert dc_error(result.r1_hat, "hid", dcs) == 0.0
        # 2. Output shapes.
        assert len(result.r1_hat) == len(r1)
        assert len(result.r2_hat) >= len(r2)
        # 3. All FK values resolve against R2̂.
        keys = set(result.r2_hat.column("hid"))
        assert set(result.r1_hat.column("hid")) <= keys
        # 4. Original R2 rows are preserved verbatim.
        assert result.r2_hat.to_rows()[: len(r2)] == r2.to_rows()

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(instance=_instances())
    def test_achievable_single_cc_is_exact(self, instance):
        """A CC whose target equals an achievable count ends up exact."""
        ages, rels, areas = instance
        r1, r2 = _instance(ages, rels, areas)
        area = areas[0]
        in_range = sum(1 for a in ages if 20 <= a <= 60)
        cc = CardinalityConstraint(
            Predicate({"Age": Interval(20, 60), "Area": ValueSet([area])}),
            in_range,
        )
        result = CExtensionSolver().solve(
            r1, r2, fk_column="hid", ccs=[cc], dcs=[]
        )
        assert result.report.errors.per_cc[0] == 0.0


class TestAgainstBruteForce:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        ages=st.lists(st.integers(20, 60), min_size=2, max_size=5),
        data=st.data(),
    )
    def test_no_new_tuples_when_brute_force_succeeds(self, ages, data):
        """If a completion exists within R2's keys and the pipeline adds
        no fresh tuples, its output is itself a valid completion."""
        from repro.core.problem import CExtensionProblem

        rels = data.draw(
            st.lists(
                st.sampled_from(_RELS),
                min_size=len(ages),
                max_size=len(ages),
            )
        )
        r1, r2 = _instance(ages, rels, ["A", "A", "B"])
        dcs = [
            DenialConstraint(
                [
                    UnaryAtom(0, "Rel", "==", "Owner"),
                    UnaryAtom(1, "Rel", "==", "Owner"),
                ]
            )
        ]
        result = CExtensionSolver().solve(
            r1, r2, fk_column="hid", ccs=[], dcs=dcs
        )
        if result.phase2.stats.num_new_r2_tuples == 0:
            problem = CExtensionProblem(
                r1=r1, r2=r2, fk_column="hid", ccs=(), dcs=tuple(dcs)
            )
            assert problem.check(list(result.r1_hat.column("hid")))
