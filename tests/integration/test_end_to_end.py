"""End-to-end invariants on census-scale instances.

The two theorems the pipeline must uphold regardless of input:

* Proposition 5.5 — every DC holds exactly in ``R1̂`` and
  ``R1̂ ⋈ R2̂ = V_join``;
* Proposition 4.7 — intersection-free CC sets are satisfied exactly.
"""

import pytest

from repro import CExtensionSolver, SolverConfig
from repro.core.metrics import evaluate
from repro.datagen import all_dcs, cc_family, good_dcs


@pytest.fixture(scope="module")
def solved_good(census_small, census_good_ccs):
    solver = CExtensionSolver()
    return solver.solve(
        census_small.persons_masked,
        census_small.housing,
        fk_column="hid",
        ccs=census_good_ccs,
        dcs=all_dcs(),
    )


@pytest.fixture(scope="module")
def solved_bad(census_small, census_bad_ccs):
    solver = CExtensionSolver()
    return solver.solve(
        census_small.persons_masked,
        census_small.housing,
        fk_column="hid",
        ccs=census_bad_ccs,
        dcs=all_dcs(),
    )


class TestGoodCcs:
    def test_all_dcs_satisfied(self, solved_good):
        assert solved_good.report.errors.dc_error == 0.0

    def test_all_ccs_exact(self, solved_good):
        """Proposition 4.7: no intersections → zero CC error."""
        assert solved_good.report.errors.max_cc_error == 0.0

    def test_everything_routed_to_hasse(self, solved_good):
        assert solved_good.phase1.s2_indices == []

    def test_join_view_row_count(self, solved_good, census_small):
        view = solved_good.join_view()
        assert len(view) == len(census_small.persons)


class TestBadCcs:
    def test_all_dcs_satisfied(self, solved_bad):
        assert solved_bad.report.errors.dc_error == 0.0

    def test_low_cc_error(self, solved_bad):
        """Paper: median 0, small mean error for the bad family."""
        errors = solved_bad.report.errors
        assert errors.median_cc_error == 0.0
        assert errors.mean_cc_error < 0.15

    def test_both_algorithms_used(self, solved_bad):
        assert solved_bad.phase1.s1_indices
        assert solved_bad.phase1.s2_indices


class TestGoodDcsVariant:
    def test_good_dcs_also_exact(self, census_small, census_good_ccs):
        result = CExtensionSolver().solve(
            census_small.persons_masked,
            census_small.housing,
            fk_column="hid",
            ccs=census_good_ccs,
            dcs=good_dcs(),
        )
        errors = result.report.errors
        assert errors.dc_error == 0.0
        assert errors.max_cc_error == 0.0


class TestDeterminism:
    def test_same_input_same_output(self, census_small, census_good_ccs):
        solver = CExtensionSolver()
        a = solver.solve(
            census_small.persons_masked, census_small.housing,
            fk_column="hid", ccs=census_good_ccs, dcs=good_dcs(),
        )
        b = solver.solve(
            census_small.persons_masked, census_small.housing,
            fk_column="hid", ccs=census_good_ccs, dcs=good_dcs(),
        )
        assert list(a.r1_hat.column("hid")) == list(b.r1_hat.column("hid"))
        assert len(a.r2_hat) == len(b.r2_hat)


class TestProposition55JoinEquality:
    def test_join_recovers_view(self, solved_good):
        """R1̂ ⋈ R2̂ must reproduce the Phase-I assignment exactly."""
        view = solved_good.join_view()
        assignment = solved_good.phase1.assignment
        attrs = assignment.r2_attrs
        for i in range(len(view)):
            expected = assignment.values(i)
            row = view.row(i)
            for attr in attrs:
                assert row[attr] == expected[attr]


class TestBaselineComparison:
    def test_figure8_ordering(self, census_small, census_bad_ccs, solved_bad):
        """Hybrid dominates both baselines on the combined error."""
        from repro.baselines import baseline_solve

        base = baseline_solve(
            census_small.persons_masked, census_small.housing,
            fk_column="hid", ccs=census_bad_ccs, dcs=all_dcs(),
        )
        marg = baseline_solve(
            census_small.persons_masked, census_small.housing,
            fk_column="hid", ccs=census_bad_ccs, dcs=all_dcs(),
            with_marginals=True,
        )
        hybrid_errors = solved_bad.report.errors
        # DCs: hybrid exact, baselines violate.
        assert hybrid_errors.dc_error == 0.0
        assert base.errors.dc_error > 0.0
        assert marg.errors.dc_error > 0.0
        # CCs: marginals repair the baseline's CC error.
        assert marg.errors.mean_cc_error <= base.errors.mean_cc_error
