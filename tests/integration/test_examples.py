"""Every example script must run to completion (they assert internally)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_example_runs(script, capsys, monkeypatch):
    # Examples print a lot; swallow it but keep assertions live.
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out  # every example reports something
