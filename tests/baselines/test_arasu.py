"""The Section-6 baselines."""

import pytest

from repro.baselines.arasu import baseline_solve


class TestBaseline:
    def test_completes_every_row(self, paper_r1, paper_r2, paper_ccs, paper_dcs):
        result = baseline_solve(
            paper_r1, paper_r2, fk_column="hid",
            ccs=paper_ccs, dcs=paper_dcs,
        )
        assert len(result.r1_hat) == len(paper_r1)
        assert set(result.r1_hat.column("hid")) <= set(paper_r2.column("hid"))

    def test_never_adds_r2_tuples(self, paper_r1, paper_r2, paper_ccs):
        result = baseline_solve(
            paper_r1, paper_r2, fk_column="hid", ccs=paper_ccs
        )
        assert result.r2_hat is paper_r2

    def test_marginals_variant_fills_all_rows_via_ilp(
        self, paper_r1, paper_r2, paper_ccs
    ):
        result = baseline_solve(
            paper_r1, paper_r2, fk_column="hid", ccs=paper_ccs,
            with_marginals=True,
        )
        # the ILP with marginal rows accounts for every tuple
        assert result.randomly_filled_rows == 0
        assert result.errors.mean_cc_error == 0.0

    def test_deterministic_under_seed(self, paper_r1, paper_r2, paper_ccs):
        a = baseline_solve(
            paper_r1, paper_r2, fk_column="hid", ccs=paper_ccs, seed=5
        )
        b = baseline_solve(
            paper_r1, paper_r2, fk_column="hid", ccs=paper_ccs, seed=5
        )
        assert list(a.r1_hat.column("hid")) == list(b.r1_hat.column("hid"))

    def test_errors_optional(self, paper_r1, paper_r2, paper_ccs):
        result = baseline_solve(
            paper_r1, paper_r2, fk_column="hid", ccs=paper_ccs,
            compute_errors=False,
        )
        assert result.errors is None

    def test_dc_error_appears_on_census(self, census_small, census_good_ccs):
        """Random FK assignment violates DCs (the paper's key comparison)."""
        from repro.datagen import all_dcs

        result = baseline_solve(
            census_small.persons_masked,
            census_small.housing,
            fk_column="hid",
            ccs=census_good_ccs,
            dcs=all_dcs(),
        )
        assert result.errors.dc_error > 0.0

    def test_fk_column_in_input_tolerated(self, paper_r2, paper_ccs):
        from repro.relational.relation import Relation

        r1_with_fk = Relation.from_columns(
            {
                "pid": [1, 2],
                "Age": [30, 40],
                "Rel": ["Owner", "Owner"],
                "Multi": [0, 1],
                "hid": [9, 9],
            },
            key="pid",
        )
        result = baseline_solve(r1_with_fk, paper_r2, fk_column="hid")
        assert set(result.r1_hat.column("hid")) <= set(paper_r2.column("hid"))
