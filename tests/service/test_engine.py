"""The cache-aware engine: splice equivalence, incremental re-synthesis,
and crash/resume — the service layer's acceptance contract.

Everything here rests on one claim: whatever mix of cache hits and
misses ``run_spec`` serves, the completed database satisfies
``Database.identical_to`` against a cold ``synthesize`` of the same
spec.  The hypothesis test drives that across random snowflake schemas;
the crash test kills a traversal mid-run and requires the resumed run
to (a) hit every checkpointed edge and (b) finish byte-identical.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.service.cache import EdgeCache
from repro.service.engine import SynthesisCancelled, run_spec
from repro.spec import SpecBuilder, synthesize


def assert_identical(a, b) -> None:
    if a.identical_to(b):
        return
    for name in a.relation_names:
        ra, rb = a.relation(name), b.relation(name)
        assert ra.schema == rb.schema, f"{name}: schemas differ"
        for column in ra.schema.names:
            assert np.array_equal(
                ra.column(column), rb.column(column)
            ), f"{name}.{column}: values differ"
    raise AssertionError("relation scan found no difference")


# ----------------------------------------------------------------------
# Random snowflake specs
# ----------------------------------------------------------------------

ARMS = st.lists(
    st.tuples(
        st.integers(min_value=4, max_value=8),   # dimension rows
        st.integers(min_value=2, max_value=3),   # sub-dimension keys
        st.booleans(),                           # arm has a sub-dimension
        st.sampled_from(["plain", "capacity", "cc", "dc"]),
    ),
    min_size=1,
    max_size=3,
)


def build_workload_spec(arms, seed, **options):
    """A random snowflake spec: fact F, one dim per arm, optional hop."""
    rng = np.random.default_rng(seed)
    builder = SpecBuilder(f"workload-{seed}")
    builder.relation(
        "F",
        columns={
            "fid": list(range(8)),
            "W": rng.integers(1, 4, 8).tolist(),
        },
        key="fid",
    )
    for i, (dim_rows, sub_keys, has_sub, flavor) in enumerate(arms):
        dim, sub = f"D{i}", f"S{i}"
        builder.relation(
            dim,
            columns={
                f"d{i}": list(range(dim_rows)),
                f"X{i}": rng.integers(0, 3, dim_rows).tolist(),
            },
            key=f"d{i}",
        )
        builder.edge("F", f"fk_d{i}", dim)
        if not has_sub:
            continue
        builder.relation(
            sub,
            columns={
                f"s{i}": list(range(sub_keys)),
                f"C{i}": [f"c{j % 2}" for j in range(sub_keys)],
            },
            key=f"s{i}",
        )
        kwargs = {}
        if flavor == "capacity":
            kwargs["capacity"] = max(2, dim_rows // sub_keys + 1)
        elif flavor == "cc":
            kwargs["ccs"] = [f"|X{i} == 1 & C{i} == 'c0'| = 2"]
        elif flavor == "dc":
            kwargs["dcs"] = [f"not(t1.X{i} == 0 & t2.X{i} == 2)"]
        builder.edge(dim, f"fk_s{i}", sub, **kwargs)
    builder.fact_table("F")
    if options:
        builder.options(**options)
    return builder.build()


class TestEquivalence:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(arms=ARMS, seed=st.integers(min_value=0, max_value=2**16))
    def test_cold_warm_and_resumed_runs_identical(
        self, tmp_path_factory, arms, seed
    ):
        """Hits or misses, run_spec == synthesize, byte for byte."""
        tmp = tmp_path_factory.mktemp("cache")
        cold = synthesize(build_workload_spec(arms, seed))
        cache = EdgeCache(tmp / "c")
        first = run_spec(build_workload_spec(arms, seed), cache=cache)
        assert_identical(first.database, cold.database)
        assert not any(e.cache_hit for e in first.edges)
        warm = run_spec(build_workload_spec(arms, seed), cache=cache)
        assert_identical(warm.database, cold.database)
        assert all(e.cache_hit for e in warm.edges)
        # A fresh cache instance on the same directory — i.e. a fresh
        # process — replays from disk alone.
        resumed = run_spec(
            build_workload_spec(arms, seed), cache=EdgeCache(tmp / "c")
        )
        assert_identical(resumed.database, cold.database)
        assert all(e.cache_hit for e in resumed.edges)

    def test_cacheless_run_matches_synthesize(self):
        spec = build_workload_spec([(5, 2, True, "cc")], seed=3)
        cold = synthesize(build_workload_spec([(5, 2, True, "cc")], seed=3))
        assert_identical(run_spec(spec).database, cold.database)

    def test_parallel_run_uses_and_fills_cache(self, tmp_path):
        arms = [(6, 2, True, "dc"), (7, 3, True, "capacity")]
        cache = EdgeCache(tmp_path / "c")
        cold = synthesize(build_workload_spec(arms, seed=11))
        first = run_spec(
            build_workload_spec(arms, seed=11, workers=2), cache=cache
        )
        assert_identical(first.database, cold.database)
        warm = run_spec(
            build_workload_spec(arms, seed=11, workers=2), cache=cache
        )
        assert all(e.cache_hit for e in warm.edges)
        assert_identical(warm.database, cold.database)


class TestIncrementalResynthesis:
    def test_only_dirty_closure_resolves(self, tmp_path):
        arms = [(6, 2, True, "cc"), (5, 3, False, "plain")]
        cache = EdgeCache(tmp_path / "c")
        run_spec(build_workload_spec(arms, seed=7), cache=cache)

        # Edit arm 1's dimension (a leaf nobody else reads): only the
        # F -> D1 edge is dirty.
        edited = build_workload_spec(arms, seed=7)
        d1 = next(r for r in edited.relations if r.name == "D1")
        d1.columns = dict(d1.columns)
        d1.columns["X1"] = [v + 1 for v in d1.columns["X1"]]

        result = run_spec(edited, cache=cache)
        flags = {(e.child, e.column): e.cache_hit for e in result.edges}
        assert flags[("F", "fk_d1")] is False
        clean = {k: v for k, v in flags.items() if k != ("F", "fk_d1")}
        assert all(clean.values()), f"clean edges re-solved: {clean}"
        # And the spliced result still equals a full cold run.
        cold = synthesize(edited)
        assert_identical(result.database, cold.database)

    def test_events_carry_hit_counters(self, tmp_path):
        arms = [(5, 2, True, "plain")]
        cache = EdgeCache(tmp_path / "c")
        run_spec(build_workload_spec(arms, seed=2), cache=cache)
        events = []
        run_spec(
            build_workload_spec(arms, seed=2),
            cache=cache,
            on_event=events.append,
        )
        assert events and all(e["type"] == "edge_cached" for e in events)
        assert events[-1]["cache_hits"] == len(events)
        assert events[-1]["cache_misses"] == 0


class TestCrashResume:
    def test_killed_run_resumes_from_checkpoints(self, tmp_path):
        arms = [(6, 2, True, "cc"), (5, 2, True, "dc")]
        spec = build_workload_spec(arms, seed=13)
        total = len(spec.edges)
        assert total == 4
        cold = synthesize(build_workload_spec(arms, seed=13))

        class Crash(RuntimeError):
            pass

        def crash_after(n):
            count = {"solved": 0}

            def hook(event):
                if event["type"] == "edge_solved":
                    count["solved"] += 1
                    if count["solved"] >= n:
                        raise Crash(f"killed after {n} edges")

            return hook

        cache = EdgeCache(tmp_path / "c")
        with pytest.raises(Crash):
            run_spec(
                build_workload_spec(arms, seed=13),
                cache=cache,
                on_event=crash_after(2),
            )
        # The two completed edges are checkpointed on disk.
        assert len(EdgeCache(tmp_path / "c")) == 2

        # Resume in a "fresh process": hits for the checkpointed edges,
        # solves for the rest, final database identical to a cold run.
        resumed = run_spec(
            build_workload_spec(arms, seed=13),
            cache=EdgeCache(tmp_path / "c"),
        )
        assert sum(e.cache_hit for e in resumed.edges) == 2
        assert sum(not e.cache_hit for e in resumed.edges) == 2
        assert_identical(resumed.database, cold.database)

    def test_cancellation_between_edges(self, tmp_path):
        arms = [(6, 2, True, "plain"), (5, 2, False, "plain")]
        cache = EdgeCache(tmp_path / "c")
        calls = {"n": 0}

        def cancel_after_first():
            calls["n"] += 1
            return calls["n"] > 1

        with pytest.raises(SynthesisCancelled):
            run_spec(
                build_workload_spec(arms, seed=21),
                cache=cache,
                should_cancel=cancel_after_first,
            )
        # Whatever was solved before the cancel is checkpointed; the
        # re-run completes and matches cold.
        cold = synthesize(build_workload_spec(arms, seed=21))
        resumed = run_spec(
            build_workload_spec(arms, seed=21), cache=cache
        )
        assert_identical(resumed.database, cold.database)
