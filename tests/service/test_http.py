"""HTTP front end + client: one live server on an ephemeral port."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.service import (
    JobManager,
    ServiceClient,
    ServiceError,
    ServiceServer,
)
from repro.spec import SpecBuilder, toml_dumps


def tiny_spec(shift=0):
    return (
        SpecBuilder("http-spec")
        .relation(
            "F",
            columns={
                "fid": list(range(4)),
                "W": [(v + shift) % 2 for v in range(4)],
            },
            key="fid",
        )
        .relation("D", columns={"did": [1, 2], "X": [0, 1]}, key="did")
        .edge("F", "fk_d", "D")
        .fact_table("F")
        .build()
    )


@pytest.fixture
def server(tmp_path):
    manager = JobManager(tmp_path / "jobs", worker_budget=1)
    srv = ServiceServer(manager, port=0)
    srv.start()
    try:
        yield srv
    finally:
        srv.stop()
        manager.close()


@pytest.fixture
def client(server):
    return ServiceClient(server.address)


class TestEndpoints:
    def test_health(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert "cache" in health

    def test_submit_json_spec_full_lifecycle(self, client):
        job_id = client.submit(tiny_spec(), name="lifecycle")
        status = client.wait(job_id, timeout=120)
        assert status["state"] == "done"
        assert status["name"] == "lifecycle"
        assert status["edges_done"] == status["total_edges"] == 1
        events, next_seq = client.events(job_id)
        assert [e["type"] for e in events] == [
            "edge_started", "edge_solved",
        ]
        assert next_seq == 2
        result = client.result(job_id)
        assert result["cache_misses"] == 1
        assert result["relations"] == {"F": 4, "D": 2}

    def test_submit_toml_text(self, client):
        job_id = client.submit(text=toml_dumps(tiny_spec().to_dict()))
        assert client.wait(job_id, timeout=120)["state"] == "done"

    def test_warm_resubmission_reports_hits(self, client):
        client.wait(client.submit(tiny_spec()), timeout=120)
        warm = client.wait(client.submit(tiny_spec()), timeout=120)
        assert warm["cache_hits"] == 1
        assert warm["cache_misses"] == 0

    def test_jobs_listing(self, client):
        job_id = client.submit(tiny_spec())
        client.wait(job_id, timeout=120)
        assert job_id in {entry["id"] for entry in client.jobs()}

    def test_cancel_endpoint(self, client):
        job_id = client.submit(tiny_spec())
        assert client.cancel(job_id)["id"] == job_id
        final = client.wait(job_id, timeout=120)
        # The tiny solve may beat the cancel flag; both are terminal.
        assert final["state"] in ("cancelled", "done")


class TestErrors:
    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as exc:
            client.status("nope")
        assert exc.value.status == 404

    def test_result_of_failed_job_is_409(self, client):
        bad = (
            SpecBuilder("orphan")
            .relation("A", columns={"aid": [1]}, key="aid")
            .relation("B", columns={"bid": [1]}, key="bid")
            .relation("C", columns={"cid": [1]}, key="cid")
            .edge("B", "fk_c", "C")
            .fact_table("A")
            .build()
        )
        job_id = client.submit(bad)
        status = client.wait(job_id, timeout=120)
        assert status["state"] == "failed"
        assert "unreachable" in status["error"]
        with pytest.raises(ServiceError) as exc:
            client.result(job_id)
        assert exc.value.status == 409

    def test_malformed_submission_is_400(self, server):
        request = urllib.request.Request(
            f"{server.address}/jobs",
            data=b"not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(request)
        assert exc.value.code == 400
        body = json.loads(exc.value.read())
        assert "error" in body

    def test_invalid_spec_is_400(self, client):
        with pytest.raises(ServiceError) as exc:
            client.submit(text="relations = 3", fmt="toml")
        assert exc.value.status == 400

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as exc:
            client._request("GET", "/nope")
        assert exc.value.status == 404
