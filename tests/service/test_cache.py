"""EdgeCache: persistence, atomicity, and the domain escape hatch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.relational.relation import Relation
from repro.relational.schema import ColumnSpec, Schema
from repro.relational.types import CatDomain, Dtype
from repro.service.cache import EdgeCache


@pytest.fixture
def parent() -> Relation:
    return Relation.from_columns(
        {"hid": [1, 2, 3], "Area": ["NYC", "Chicago", "NYC"]}, key="hid"
    )


@pytest.fixture
def fk_spec() -> ColumnSpec:
    return ColumnSpec("hid", Dtype.INT)


FK_VALUES = np.asarray([1, 1, 2, 3, 2], dtype=np.int64)
REPORT = {"strategy": "coloring", "wall_seconds": 0.5}


def test_memory_round_trip(fk_spec, parent):
    cache = EdgeCache()
    assert cache.get("fp1") is None
    assert cache.put("fp1", fk_spec, FK_VALUES, parent, REPORT)
    entry = cache.get("fp1")
    assert entry is not None
    assert entry.fk_spec == fk_spec
    np.testing.assert_array_equal(entry.fk_values, FK_VALUES)
    assert entry.report == REPORT
    assert cache.stats()["entries"] == 1
    assert cache.stats()["hits"] == 1
    assert cache.stats()["misses"] == 1


def test_disk_round_trip_across_instances(tmp_path, fk_spec, parent):
    EdgeCache(tmp_path / "c").put(
        "fp1", fk_spec, FK_VALUES, parent, REPORT
    )
    # A fresh instance (fresh process, conceptually) sees the entry.
    fresh = EdgeCache(tmp_path / "c")
    entry = fresh.get("fp1")
    assert entry is not None
    np.testing.assert_array_equal(entry.fk_values, FK_VALUES)
    assert entry.parent.schema == parent.schema
    for name in parent.schema.names:
        np.testing.assert_array_equal(
            entry.parent.column(name), parent.column(name)
        )
    assert entry.report == REPORT


def test_str_fk_values_round_trip(tmp_path):
    parent = Relation.from_columns(
        {"code": ["a", "b"], "v": [1, 2]}, key="code"
    )
    spec = ColumnSpec("code", Dtype.STR)
    values = np.asarray(["b", "a", "b"], dtype=object)
    EdgeCache(tmp_path / "c").put("fp", spec, values, parent, {})
    entry = EdgeCache(tmp_path / "c").get("fp")
    np.testing.assert_array_equal(entry.fk_values, values)


def test_no_partial_entries_on_disk(tmp_path, fk_spec, parent):
    cache = EdgeCache(tmp_path / "c")
    cache.put("fp1", fk_spec, FK_VALUES, parent, REPORT)
    # Only complete, atomically renamed entries are visible: anything
    # else in the directory must be a temp leftover, and there are none.
    entries = list((tmp_path / "c").iterdir())
    assert [e.name for e in entries] == ["fp1"]
    assert (entries[0] / "meta.json").is_file()


def test_domain_bearing_entries_are_skipped(fk_spec):
    domain = CatDomain(["NYC", "Chicago"])
    parent = Relation(
        Schema(
            (
                ColumnSpec("hid", Dtype.INT),
                ColumnSpec("Area", Dtype.STR, domain),
            ),
            key="hid",
        ),
        {
            "hid": np.asarray([1, 2], dtype=np.int64),
            "Area": np.asarray(["NYC", "Chicago"], dtype=object),
        },
    )
    cache = EdgeCache()
    assert not cache.put("fp", fk_spec, FK_VALUES[:2], parent, {})
    assert cache.get("fp") is None


def test_unknown_version_is_a_miss(tmp_path, fk_spec, parent):
    cache = EdgeCache(tmp_path / "c")
    cache.put("fp1", fk_spec, FK_VALUES, parent, REPORT)
    meta = tmp_path / "c" / "fp1" / "meta.json"
    meta.write_text(meta.read_text().replace('"version": 1', '"version": 99'))
    assert EdgeCache(tmp_path / "c").get("fp1") is None
