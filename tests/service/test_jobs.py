"""JobManager: lifecycle, durable job directories, restart resume."""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.service.jobs import JobManager, JobNotFound
from repro.spec import SpecBuilder, synthesize


def small_spec(name="job-spec", shift=0):
    return (
        SpecBuilder(name)
        .relation(
            "F",
            columns={
                "fid": list(range(6)),
                "W": [(v + shift) % 3 for v in range(6)],
            },
            key="fid",
        )
        .relation(
            "D", columns={"did": [1, 2], "X": [0, 1]}, key="did"
        )
        .edge("F", "fk_d", "D", ccs=["|W == 1 & X == 1| = 2"])
        .fact_table("F")
        .build()
    )


class TestLifecycle:
    def test_submit_wait_result(self, tmp_path):
        manager = JobManager(tmp_path / "jobs", worker_budget=1)
        job_id = manager.submit(small_spec())
        status = manager.wait(job_id, timeout=120)
        assert status["state"] == "done"
        assert status["total_edges"] == 1
        assert status["edges_done"] == 1
        result = manager.result(job_id)
        assert result["cache_misses"] == 1
        # The job directory is self-contained and durable.
        job_dir = tmp_path / "jobs" / job_id
        assert (job_dir / "spec.json").is_file()
        assert (job_dir / "status.json").is_file()
        assert (job_dir / "events.jsonl").is_file()
        assert (job_dir / "result" / "summary.json").is_file()
        assert (job_dir / "result" / "F.csv").is_file()
        manager.close()

    def test_warm_resubmission_hits_cache(self, tmp_path):
        manager = JobManager(tmp_path / "jobs", worker_budget=1)
        manager.wait(manager.submit(small_spec()), timeout=120)
        warm = manager.submit(small_spec())
        status = manager.wait(warm, timeout=120)
        assert status["cache_hits"] == 1
        assert status["cache_misses"] == 0
        events, next_seq = manager.events(warm)
        assert [e["type"] for e in events] == ["edge_cached"]
        assert next_seq == 1
        # Event cursoring.
        later, _ = manager.events(warm, since=next_seq)
        assert later == []
        manager.close()

    def test_failed_job_reports_error(self, tmp_path):
        manager = JobManager(tmp_path / "jobs", worker_budget=1)
        # The B -> C edge hangs off nothing the fact table reaches.
        bad = (
            SpecBuilder("orphan")
            .relation("A", columns={"aid": [1]}, key="aid")
            .relation("B", columns={"bid": [1]}, key="bid")
            .relation("C", columns={"cid": [1]}, key="cid")
            .edge("B", "fk_c", "C")
            .fact_table("A")
            .build()
        )
        job_id = manager.submit(bad)
        status = manager.wait(job_id, timeout=120)
        assert status["state"] == "failed"
        assert "unreachable" in status["error"]
        with pytest.raises(ReproError):
            manager.result(job_id)
        manager.close()

    def test_unknown_job(self, tmp_path):
        manager = JobManager(tmp_path / "jobs")
        with pytest.raises(JobNotFound):
            manager.status("nope")
        manager.close()

    def test_submit_text_toml(self, tmp_path):
        from repro.spec import toml_dumps

        manager = JobManager(tmp_path / "jobs", worker_budget=1)
        job_id = manager.submit_text(
            toml_dumps(small_spec().to_dict()), fmt="toml"
        )
        assert manager.wait(job_id, timeout=120)["state"] == "done"
        manager.close()

    def test_malformed_spec_fails_at_submit(self, tmp_path):
        manager = JobManager(tmp_path / "jobs")
        with pytest.raises(ReproError):
            manager.submit_text("relations = 3", fmt="toml")
        manager.close()


class TestRestartResume:
    def test_fresh_manager_adopts_terminal_jobs(self, tmp_path):
        first = JobManager(tmp_path / "jobs", worker_budget=1)
        job_id = first.submit(small_spec())
        first.wait(job_id, timeout=120)
        first.close()

        second = JobManager(tmp_path / "jobs", worker_budget=1)
        status = second.status(job_id)
        assert status["state"] == "done"
        assert second.result(job_id)["cache_misses"] == 1
        events, _ = second.events(job_id)
        assert [e["type"] for e in events] == [
            "edge_started", "edge_solved",
        ]
        assert second.resume_pending() == []
        second.close()

    def test_interrupted_job_resumes_to_identical_result(self, tmp_path):
        """A job killed mid-run finishes after restart, via checkpoints."""
        first = JobManager(tmp_path / "jobs", worker_budget=1)
        job_id = first.submit(small_spec())
        first.wait(job_id, timeout=120)
        first.close()

        # Forge the crash: rewind the status file to "running", as a
        # process killed mid-traversal would leave it.
        status_path = tmp_path / "jobs" / job_id / "status.json"
        status = json.loads(status_path.read_text())
        status["state"] = "running"
        status_path.write_text(json.dumps(status))
        import shutil

        shutil.rmtree(tmp_path / "jobs" / job_id / "result")

        second = JobManager(tmp_path / "jobs", worker_budget=1)
        assert second.status(job_id)["state"] == "running"
        assert second.resume_pending() == [job_id]
        final = second.wait(job_id, timeout=120)
        assert final["state"] == "done"
        # The resumed run spliced the checkpointed edge from the cache…
        assert final["cache_hits"] == 1
        # …and its output matches a cold in-process run of the spec.
        summary = second.result(job_id)
        cold = synthesize(small_spec())
        assert (
            summary["relations"]
            == {
                name: len(cold.database.relation(name))
                for name in cold.database.relation_names
            }
        )
        import csv

        with open(
            tmp_path / "jobs" / job_id / "result" / "F.csv"
        ) as handle:
            rows = list(csv.reader(handle))
        header, data = rows[0], rows[1:]
        fk_index = header.index("fk_d")
        cold_fk = cold.database.relation("F").column("fk_d")
        assert [int(row[fk_index]) for row in data] == cold_fk.tolist()
        second.close()

    def test_cancel_running_job(self, tmp_path):
        manager = JobManager(tmp_path / "jobs", worker_budget=1)
        job_id = manager.submit(small_spec())
        manager.cancel(job_id)
        status = manager.wait(job_id, timeout=120)
        # Cancellation raced the (tiny) solve: either it landed between
        # edges, or the job finished first — both are valid terminal
        # states, and neither hangs.
        assert status["state"] in ("cancelled", "done")
        manager.close()
