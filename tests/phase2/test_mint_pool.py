"""Fresh-key minting: unclaimed mints must be reused, not leaked.

A fresh-color pass mints one key per skipped vertex, but mutually
non-conflicting skipped vertices share the first fresh key — the old code
discarded the rest, leaking id gaps into ``R2̂``.  The :class:`MintPool`
returns unclaimed mints to a pool that later passes (and partitions)
drain first.
"""

import numpy as np

from repro.constraints.dc import BinaryAtom, DenialConstraint
from repro.phase1.assignment import ViewAssignment
from repro.phase1.combos import ComboCatalog
from repro.phase2.fk_assignment import FreshKeyFactory, MintPool, run_phase2
from repro.relational.relation import Relation


def _fixture():
    """Two combo partitions, each with two disjoint conflict pairs.

    With one candidate key per combo, the first coloring pass colors one
    row of each pair and skips the other; the fresh pass then needs only
    ONE fresh key per partition (the two skipped rows don't conflict with
    each other) although it mints two.
    """
    r1 = Relation.from_columns(
        {
            "pid": list(range(8)),
            "Name": ["A", "A", "B", "B", "C", "C", "D", "D"],
        },
        key="pid",
    )
    r2 = Relation.from_columns(
        {"hid": [1, 2], "Kind": ["c1", "c2"]},
        key="hid",
    )
    # Two rows with equal Name must not share a key.
    dc = DenialConstraint(
        [BinaryAtom(0, "Name", "==", 1, "Name")], name="same_name"
    )
    assignment = ViewAssignment(n=8, r2_attrs=("Kind",))
    assignment.assign_rows([0, 1, 2, 3], {"Kind": "c1"})
    assignment.assign_rows([4, 5, 6, 7], {"Kind": "c2"})
    catalog = ComboCatalog.from_relation(r2)
    return r1, r2, [dc], assignment, catalog


class TestMintPool:
    def test_take_prefers_released_keys(self):
        factory = FreshKeyFactory([1, 2])
        pool = MintPool(factory)
        first = pool.take(3)
        assert first == [3, 4, 5]
        pool.release([4, 5])
        assert pool.take(3) == [4, 5, 6]

    def test_take_zero(self):
        pool = MintPool(FreshKeyFactory([]))
        assert pool.take(0) == []

    def test_mint_drains_pool_first(self):
        """The invalid-tuple fallbacks mint through the pool too."""
        pool = MintPool(FreshKeyFactory([1]))
        pool.release([99])
        assert pool.mint() == 99
        assert pool.mint() == 2


class TestNoKeyGaps:
    def _assert_dense_new_keys(self, r2, phase2):
        original = set(r2.column("hid").tolist())
        new_keys = sorted(
            set(phase2.r2_hat.column("hid").tolist()) - original
        )
        assert len(new_keys) == phase2.stats.num_new_r2_tuples
        # Dense: exactly max(original)+1 .. max(original)+k, no gaps from
        # discarded mints.
        start = max(original) + 1
        assert new_keys == list(range(start, start + len(new_keys)))

    def test_partitioned_sequential(self):
        r1, r2, dcs, assignment, catalog = _fixture()
        phase2 = run_phase2(
            r1, r2, dcs, assignment, catalog, "hid", partitioned=True
        )
        self._assert_dense_new_keys(r2, phase2)
        # One fresh key per partition suffices; the old code minted two
        # and leaked one, so the dense assertion above would fail.
        assert phase2.stats.num_new_r2_tuples == 2
        # All DCs hold: conflicting pairs never share a key.
        fk = phase2.r1_hat.column("hid")
        for u, v in [(0, 1), (2, 3), (4, 5), (6, 7)]:
            assert fk[u] != fk[v]

    def test_non_partitioned_global_graph(self):
        r1, r2, dcs, assignment, catalog = _fixture()
        phase2 = run_phase2(
            r1, r2, dcs, assignment, catalog, "hid", partitioned=False
        )
        self._assert_dense_new_keys(r2, phase2)
        fk = phase2.r1_hat.column("hid")
        for u, v in [(0, 1), (2, 3), (4, 5), (6, 7)]:
            assert fk[u] != fk[v]

    def test_parallel_path(self):
        r1, r2, dcs, assignment, catalog = _fixture()
        phase2 = run_phase2(
            r1,
            r2,
            dcs,
            assignment,
            catalog,
            "hid",
            partitioned=True,
            parallel_workers=2,
        )
        self._assert_dense_new_keys(r2, phase2)
