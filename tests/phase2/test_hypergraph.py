"""Conflict hypergraph structure."""

from repro.phase2.hypergraph import ConflictHypergraph


class TestConstruction:
    def test_over_vertices(self):
        graph = ConflictHypergraph.over([1, 2, 3])
        assert graph.num_vertices == 3
        assert graph.num_edges == 0

    def test_add_edge_creates_vertices(self):
        graph = ConflictHypergraph()
        assert graph.add_edge([1, 2])
        assert graph.num_vertices == 2

    def test_duplicate_edge_ignored(self):
        graph = ConflictHypergraph()
        assert graph.add_edge([1, 2])
        assert not graph.add_edge([2, 1])
        assert graph.num_edges == 1

    def test_degenerate_edge_rejected(self):
        graph = ConflictHypergraph()
        assert not graph.add_edge([1])
        assert not graph.add_edge([1, 1])

    def test_hyperedge(self):
        graph = ConflictHypergraph()
        assert graph.add_edge([1, 2, 3])
        assert graph.degree(1) == 1


class TestQueries:
    def test_degree_and_incidence(self):
        graph = ConflictHypergraph()
        graph.add_edge([1, 2])
        graph.add_edge([1, 3])
        graph.add_edge([2, 3])
        assert graph.degree(1) == 2
        assert len(graph.incident_edges(1)) == 2
        assert graph.degree(99) == 0

    def test_is_proper_binary(self):
        graph = ConflictHypergraph()
        graph.add_edge([1, 2])
        assert graph.is_proper({1: "a", 2: "b"})
        assert not graph.is_proper({1: "a", 2: "a"})

    def test_is_proper_hyperedge_needs_two_colors(self):
        graph = ConflictHypergraph()
        graph.add_edge([1, 2, 3])
        assert graph.is_proper({1: "a", 2: "a", 3: "b"})
        assert not graph.is_proper({1: "a", 2: "a", 3: "a"})

    def test_uncolored_vertices_do_not_violate(self):
        graph = ConflictHypergraph()
        graph.add_edge([1, 2])
        assert graph.is_proper({1: "a"})

    def test_clique_lower_bound(self):
        graph = ConflictHypergraph()
        for a in (1, 2, 3):
            for b in (1, 2, 3):
                if a < b:
                    graph.add_edge([a, b])
        assert graph.max_clique_lower_bound() == 3
