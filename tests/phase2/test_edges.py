"""Vectorised edge enumeration vs brute force."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constraints.dc import BinaryAtom, DenialConstraint, UnaryAtom
from repro.phase2.edges import build_conflict_graph, conflicting_pairs
from repro.relational.relation import Relation


def _relation(ages, rels):
    return Relation.from_columns(
        {"pid": list(range(len(ages))), "Age": ages, "Rel": rels}, key="pid"
    )


@pytest.fixture
def dc_owner_pair():
    return DenialConstraint(
        [UnaryAtom(0, "Rel", "==", "Owner"), UnaryAtom(1, "Rel", "==", "Owner")]
    )


@pytest.fixture
def dc_spouse_gap():
    return DenialConstraint(
        [
            UnaryAtom(0, "Rel", "==", "Owner"),
            UnaryAtom(1, "Rel", "==", "Spouse"),
            BinaryAtom(1, "Age", "<", 0, "Age", -50),
        ]
    )


class TestConflictingPairs:
    def test_symmetric_dc(self, dc_owner_pair):
        relation = _relation([30, 40, 50], ["Owner", "Owner", "Child"])
        rows = np.arange(3)
        assert conflicting_pairs(relation, dc_owner_pair, rows) == [(0, 1)]

    def test_asymmetric_dc_both_orientations(self, dc_spouse_gap):
        relation = _relation([75, 20, 30], ["Owner", "Spouse", "Spouse"])
        rows = np.arange(3)
        pairs = conflicting_pairs(relation, dc_spouse_gap, rows)
        assert pairs == [(0, 1)]  # 20 < 75-50; 30 is fine

    def test_self_pair_excluded(self, dc_owner_pair):
        relation = _relation([30], ["Owner"])
        assert conflicting_pairs(relation, dc_owner_pair, np.arange(1)) == []

    def test_cross_sets(self, dc_owner_pair):
        relation = _relation([1, 2, 3], ["Owner", "Owner", "Owner"])
        pairs = conflicting_pairs(
            relation, dc_owner_pair, np.asarray([0]), np.asarray([1, 2])
        )
        assert pairs == [(0, 1), (0, 2)]

    def test_arity_guard(self, dc_owner_pair):
        ternary = DenialConstraint(
            [BinaryAtom(0, "Age", "==", 1, "Age"),
             BinaryAtom(1, "Age", "==", 2, "Age")],
            arity=3,
        )
        relation = _relation([1], ["Owner"])
        with pytest.raises(ValueError):
            conflicting_pairs(relation, ternary, np.arange(1))


class TestBuildConflictGraph:
    def test_owner_clique(self, dc_owner_pair):
        relation = _relation([1, 2, 3], ["Owner"] * 3)
        graph = build_conflict_graph(relation, [dc_owner_pair], range(3))
        assert graph.num_edges == 3  # triangle

    def test_ternary_dc_hyperedges(self):
        dc = DenialConstraint(
            [BinaryAtom(0, "Age", "==", 1, "Age"),
             BinaryAtom(1, "Age", "==", 2, "Age")],
            arity=3,
        )
        relation = _relation([7, 7, 7, 8], ["x"] * 4)
        graph = build_conflict_graph(relation, [dc], range(4))
        assert graph.num_edges == 1
        assert graph.edges[0] == frozenset({0, 1, 2})

    def test_multiple_dcs_union(self, dc_owner_pair, dc_spouse_gap):
        relation = _relation([75, 75, 20], ["Owner", "Owner", "Spouse"])
        graph = build_conflict_graph(
            relation, [dc_owner_pair, dc_spouse_gap], range(3)
        )
        edges = {tuple(sorted(e)) for e in graph.edges}
        assert edges == {(0, 1), (0, 2), (1, 2)}


class TestAgainstBruteForce:
    @settings(max_examples=30, deadline=None)
    @given(
        ages=st.lists(st.integers(0, 99), min_size=2, max_size=12),
        data=st.data(),
    )
    def test_vectorised_matches_row_level(self, ages, data):
        rels = data.draw(
            st.lists(
                st.sampled_from(["Owner", "Spouse", "Child"]),
                min_size=len(ages),
                max_size=len(ages),
            )
        )
        relation = _relation(ages, rels)
        dc = DenialConstraint(
            [
                UnaryAtom(0, "Rel", "==", "Owner"),
                UnaryAtom(1, "Rel", "in", ("Spouse", "Child")),
                BinaryAtom(1, "Age", "<", 0, "Age", -10),
            ]
        )
        fast = set(conflicting_pairs(relation, dc, np.arange(len(ages))))
        slow = set()
        rows = [relation.row(i) for i in range(len(ages))]
        for i, j in itertools.combinations(range(len(ages)), 2):
            if dc.violates([rows[i], rows[j]]):
                slow.add((i, j))
        assert fast == slow
