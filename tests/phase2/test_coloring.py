"""Algorithm 3 — largest-first list coloring."""

from hypothesis import given, settings, strategies as st

from repro.phase2.coloring import coloring_lf
from repro.phase2.hypergraph import ConflictHypergraph


def _graph(edges, vertices=None):
    graph = ConflictHypergraph.over(vertices or [])
    for edge in edges:
        graph.add_edge(edge)
    return graph


class TestBasics:
    def test_independent_vertices_take_smallest_color(self):
        graph = _graph([], vertices=[0, 1, 2])
        coloring, skipped = coloring_lf(graph, {}, ["a", "b"])
        assert skipped == []
        assert all(c == "a" for c in coloring.values())

    def test_triangle_needs_three(self):
        graph = _graph([(0, 1), (1, 2), (0, 2)])
        coloring, skipped = coloring_lf(graph, {}, [1, 2, 3])
        assert skipped == []
        assert graph.is_proper(coloring)
        assert len(set(coloring.values())) == 3

    def test_triangle_with_two_colors_skips_one(self):
        graph = _graph([(0, 1), (1, 2), (0, 2)])
        coloring, skipped = coloring_lf(graph, {}, [1, 2])
        assert len(skipped) == 1
        assert graph.is_proper(coloring)

    def test_example_5_3_shape(self):
        """Figure 7's Chicago component: owners 1-4 pairwise conflicting."""
        # vertices 0..6 = pids 1..7; owners are 0,1,2,3
        owner_edges = [(a, b) for a in range(4) for b in range(4) if a < b]
        graph = _graph(owner_edges, vertices=range(7))
        coloring, skipped = coloring_lf(graph, {}, [1, 2, 3, 4])
        assert skipped == []
        assert len({coloring[v] for v in range(4)}) == 4  # owners distinct

    def test_respects_existing_coloring(self):
        graph = _graph([(0, 1)])
        coloring, skipped = coloring_lf(graph, {0: "a"}, ["a", "b"])
        assert coloring[0] == "a"  # untouched
        assert coloring[1] == "b"

    def test_degree_order_high_first(self):
        # star: center has degree 3 and must be colored first
        graph = _graph([(0, 1), (0, 2), (0, 3)])
        coloring, skipped = coloring_lf(graph, {}, ["a", "b"])
        assert coloring[0] == "a"
        assert all(coloring[v] == "b" for v in (1, 2, 3))


class TestHyperedges:
    def test_forbidden_only_when_all_others_share(self):
        graph = _graph([(0, 1, 2)])
        # color 1 and 2 differently: vertex 0 may take either color
        coloring, skipped = coloring_lf(graph, {1: "a", 2: "b"}, ["a", "b"])
        assert coloring[0] == "a"
        # color 1 and 2 the same: that color is forbidden for 0
        coloring, skipped = coloring_lf(graph, {1: "a", 2: "a"}, ["a", "b"])
        assert coloring[0] == "b"


class TestCandidateLists:
    def test_per_vertex_lists(self):
        graph = _graph([(0, 1)])
        coloring, skipped = coloring_lf(
            graph, {}, [], candidate_lists={0: ["x"], 1: ["x", "y"]}
        )
        assert coloring == {0: "x", 1: "y"}

    def test_empty_list_skips(self):
        graph = _graph([], vertices=[5])
        coloring, skipped = coloring_lf(graph, {}, [])
        assert skipped == [5]


class TestProperColoringProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(2, 10),
        data=st.data(),
    )
    def test_output_is_always_proper(self, n, data):
        edges = data.draw(
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                max_size=20,
            )
        )
        graph = _graph(
            [e for e in edges if e[0] != e[1]], vertices=range(n)
        )
        num_colors = data.draw(st.integers(1, n))
        coloring, skipped = coloring_lf(graph, {}, list(range(num_colors)))
        assert graph.is_proper(coloring)
        # Skipped vertices are exactly the uncolored ones.
        assert set(skipped) == set(graph.vertices) - set(coloring)
