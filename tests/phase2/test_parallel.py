"""Parallel partition coloring (Appendix A.3)."""

import pytest

from repro.constraints.parser import parse_dc
from repro.phase1.hybrid import run_phase1
from repro.phase2.parallel import color_partitions_parallel
from repro.relational.relation import Relation


@pytest.fixture
def setup():
    r1 = Relation.from_columns(
        {
            "pid": list(range(12)),
            "Age": [30 + i for i in range(12)],
            "Rel": ["Owner", "Child"] * 6,
            "Multi": [0, 1] * 6,
        },
        key="pid",
    )
    r2 = Relation.from_columns(
        {
            "hid": list(range(8)),
            "Area": ["Chicago"] * 4 + ["NYC"] * 4,
        },
        key="hid",
    )
    dcs = [parse_dc("not(t1.Rel == 'Owner' & t2.Rel == 'Owner')")]
    return r1, r2, dcs


def test_parallel_coloring_matches_sequential_guarantees(setup):
    r1, r2, dcs = setup
    phase1 = run_phase1(r1, r2, [])
    partitions = {}
    for row in range(len(r1)):
        partitions.setdefault(phase1.assignment.combo(row), []).append(row)
    keys_by_combo = dict(phase1.catalog.keys_by_combo)

    coloring, skipped_by_combo, num_edges = color_partitions_parallel(
        r1, dcs, partitions, keys_by_combo, max_workers=2
    )
    # Every owner pair sharing a color would be a violation; check none.
    owners_by_color = {}
    for row, color in coloring.items():
        if r1.row(row)["Rel"] == "Owner":
            owners_by_color.setdefault(color, []).append(row)
    assert all(len(rows) == 1 for rows in owners_by_color.values())
    # All rows either colored or reported skipped.
    skipped = {r for rows in skipped_by_combo.values() for r in rows}
    assert set(coloring) | skipped == set(range(len(r1)))


class TestPartitionSchemaPreserved:
    """Regression: workers must rebuild partitions with R1's true schema.

    ``Relation.from_columns`` re-inferred dtypes from the slice, so a
    categorical column whose partition happened to hold all-int values
    flipped to ``INT`` (and the key was dropped).  Under NumPy ≥ 2 a DC
    comparing such a column to a string then crashes with a ufunc type
    error; with the declared schema it evaluates correctly.
    """

    @pytest.fixture
    def int_valued_categorical(self):
        import numpy as np

        from repro.relational.schema import ColumnSpec, Schema
        from repro.relational.types import Dtype

        schema = Schema(
            [
                ColumnSpec("pid", Dtype.INT),
                ColumnSpec("Code", Dtype.STR),
                ColumnSpec("Age", Dtype.INT),
            ],
            key="pid",
        )
        # "Code" is declared categorical but this slice is all ints.
        return Relation(
            schema,
            {
                "pid": np.asarray([0, 1, 2], dtype=np.int64),
                "Code": np.asarray([7, 7, 9], dtype=object),
                "Age": np.asarray([30, 40, 50], dtype=np.int64),
            },
        )

    def test_payload_carries_declared_schema(self, int_valued_categorical):
        from repro.phase2.parallel import partition_payloads
        from repro.relational.types import Dtype

        r1 = int_valued_categorical
        partitions = {("c",): [0, 1, 2]}
        payloads, candidates_by_combo = partition_payloads(
            r1, [], partitions, {("c",): [10, 2, 3]}
        )
        (columns, schema, combo, rows, dcs, num_candidates) = payloads[0]
        assert schema is r1.schema
        assert schema.dtype("Code") is Dtype.STR
        assert schema.key == "pid"
        assert columns["Code"].dtype == object
        # Candidate lists sort canonically (numeric, not repr) exactly once.
        assert num_candidates == 3
        assert candidates_by_combo == {("c",): [2, 3, 10]}

    def test_worker_evaluates_string_dc_on_int_valued_slice(
        self, int_valued_categorical
    ):
        from repro.phase2.parallel import _color_one, partition_payloads

        r1 = int_valued_categorical
        # Comparing Code to a string must not crash and must match nothing.
        dcs = [parse_dc("not(t1.Code == 'x' & t2.Code == 'x')")]
        partitions = {("c",): [0, 1, 2]}
        payloads, _ = partition_payloads(r1, dcs, partitions, {("c",): [1]})
        combo, back, skipped_rows, num_edges = _color_one(payloads[0])
        assert combo == ("c",)
        assert num_edges == 0
        assert set(back) == {0, 1, 2} and not skipped_rows

    def test_parallel_coloring_on_int_valued_categorical(
        self, int_valued_categorical
    ):
        from repro.phase2.parallel import color_partitions_parallel

        r1 = int_valued_categorical
        dcs = [parse_dc("not(t1.Code == 'x' & t2.Code == 'x')")]
        partitions = {("c",): [0, 1, 2]}
        coloring, skipped_by_combo, _ = color_partitions_parallel(
            r1, dcs, partitions, {("c",): [101]}, max_workers=2
        )
        assert coloring == {0: 101, 1: 101, 2: 101}
        assert not skipped_by_combo
