"""Parallel partition coloring (Appendix A.3)."""

import pytest

from repro.constraints.parser import parse_dc
from repro.phase1.hybrid import run_phase1
from repro.phase2.parallel import color_partitions_parallel
from repro.relational.relation import Relation


@pytest.fixture
def setup():
    r1 = Relation.from_columns(
        {
            "pid": list(range(12)),
            "Age": [30 + i for i in range(12)],
            "Rel": ["Owner", "Child"] * 6,
            "Multi": [0, 1] * 6,
        },
        key="pid",
    )
    r2 = Relation.from_columns(
        {
            "hid": list(range(8)),
            "Area": ["Chicago"] * 4 + ["NYC"] * 4,
        },
        key="hid",
    )
    dcs = [parse_dc("not(t1.Rel == 'Owner' & t2.Rel == 'Owner')")]
    return r1, r2, dcs


def test_parallel_coloring_matches_sequential_guarantees(setup):
    r1, r2, dcs = setup
    phase1 = run_phase1(r1, r2, [])
    partitions = {}
    for row in range(len(r1)):
        partitions.setdefault(phase1.assignment.combo(row), []).append(row)
    keys_by_combo = dict(phase1.catalog.keys_by_combo)

    coloring, skipped_by_combo, num_edges = color_partitions_parallel(
        r1, dcs, partitions, keys_by_combo, max_workers=2
    )
    # Every owner pair sharing a color would be a violation; check none.
    owners_by_color = {}
    for row, color in coloring.items():
        if r1.row(row)["Rel"] == "Owner":
            owners_by_color.setdefault(color, []).append(row)
    assert all(len(rows) == 1 for rows in owners_by_color.values())
    # All rows either colored or reported skipped.
    skipped = {r for rows in skipped_by_combo.values() for r in rows}
    assert set(coloring) | skipped == set(range(len(r1)))
