"""Algorithm 4 — FK completion and the Proposition 5.5 invariants."""

import pytest

from repro.core.metrics import dc_error
from repro.phase1.hybrid import run_phase1
from repro.phase2.fk_assignment import FreshKeyFactory, run_phase2
from repro.relational.join import fk_join


def _run(r1, r2, ccs, dcs, partitioned=True):
    phase1 = run_phase1(r1, r2, ccs)
    phase2 = run_phase2(
        r1, r2, dcs, phase1.assignment, phase1.catalog, "hid",
        ccs=ccs, partitioned=partitioned,
    )
    return phase1, phase2


class TestFreshKeyFactory:
    def test_integer_keys_continue_sequence(self):
        factory = FreshKeyFactory([1, 2, 7])
        assert factory.mint() == 8
        assert factory.mint() == 9

    def test_string_keys_get_synthetic_names(self):
        factory = FreshKeyFactory(["h1", "h2"])
        minted = factory.mint()
        assert minted.startswith("synthetic_")
        assert factory.mint() != minted

    def test_empty_starts_at_one(self):
        assert FreshKeyFactory([]).mint() == 1


class TestRunningExample:
    def test_all_dcs_satisfied(self, paper_r1, paper_r2, paper_ccs, paper_dcs):
        _, phase2 = _run(paper_r1, paper_r2, paper_ccs, paper_dcs)
        assert dc_error(phase2.r1_hat, "hid", paper_dcs) == 0.0

    def test_join_view_equality(self, paper_r1, paper_r2, paper_ccs, paper_dcs):
        """Proposition 5.5: R1̂ ⋈ R2̂ equals the Phase-I view."""
        phase1, phase2 = _run(paper_r1, paper_r2, paper_ccs, paper_dcs)
        joined = fk_join(phase2.r1_hat, phase2.r2_hat, "hid")
        for i in range(len(paper_r1)):
            row = joined.row(i)
            expected = phase1.assignment.values(i)
            for attr, value in expected.items():
                assert row[attr] == value

    def test_r2_hat_extends_r2(self, paper_r1, paper_r2, paper_ccs, paper_dcs):
        _, phase2 = _run(paper_r1, paper_r2, paper_ccs, paper_dcs)
        original = set(paper_r2.column("hid"))
        assert original <= set(phase2.r2_hat.column("hid"))
        assert len(phase2.r2_hat) >= len(paper_r2)

    def test_every_row_colored(self, paper_r1, paper_r2, paper_ccs, paper_dcs):
        _, phase2 = _run(paper_r1, paper_r2, paper_ccs, paper_dcs)
        assert len(phase2.coloring) == len(paper_r1)

    def test_fk_values_reference_r2_hat(
        self, paper_r1, paper_r2, paper_ccs, paper_dcs
    ):
        _, phase2 = _run(paper_r1, paper_r2, paper_ccs, paper_dcs)
        keys = set(phase2.r2_hat.column("hid"))
        assert set(phase2.r1_hat.column("hid")) <= keys


class TestFreshTuples:
    def test_overfull_partition_mints_new_keys(self, paper_dcs):
        """Three owners, one Chicago house → two fresh tuples."""
        from repro.relational.relation import Relation

        r1 = Relation.from_columns(
            {
                "pid": [1, 2, 3],
                "Age": [40, 45, 50],
                "Rel": ["Owner"] * 3,
                "Multi": [0, 0, 0],
            },
            key="pid",
        )
        r2 = Relation.from_columns(
            {"hid": [1], "Area": ["Chicago"]}, key="hid"
        )
        _, phase2 = _run(r1, r2, [], paper_dcs)
        assert phase2.stats.num_new_r2_tuples == 2
        assert len(phase2.r2_hat) == 3
        assert dc_error(phase2.r1_hat, "hid", paper_dcs) == 0.0
        # New tuples carry the same Area combo.
        assert set(phase2.r2_hat.column("Area")) == {"Chicago"}


class TestGlobalColoringAblation:
    def test_unpartitioned_matches_partitioned_guarantees(
        self, paper_r1, paper_r2, paper_ccs, paper_dcs
    ):
        _, partitioned = _run(paper_r1, paper_r2, paper_ccs, paper_dcs, True)
        _, global_ = _run(paper_r1, paper_r2, paper_ccs, paper_dcs, False)
        assert dc_error(global_.r1_hat, "hid", paper_dcs) == 0.0
        # The global graph sees the dashed cross-partition edges of
        # Figure 7 as well, so it has at least as many edges.
        assert global_.stats.num_edges >= partitioned.stats.num_edges
