"""solveInvalidTuples (Algorithm 4, line 16)."""

import pytest

from repro.constraints.parser import parse_cc, parse_dc
from repro.core.metrics import dc_error, evaluate
from repro.phase1.hybrid import run_phase1
from repro.phase2.fk_assignment import run_phase2
from repro.relational.relation import Relation


def _invalid_instance():
    """Three same-age rows, one Chicago-only combo, CC permits one row."""
    r1 = Relation.from_columns(
        {"pid": [0, 1, 2], "Age": [5, 5, 5], "Rel": ["Child"] * 3}, key="pid"
    )
    r2 = Relation.from_columns({"hid": [1], "Area": ["Chicago"]}, key="hid")
    ccs = [parse_cc("|Age in [0, 10] & Area == 'Chicago'| = 1")]
    return r1, r2, ccs


class TestInvalidHandling:
    def test_invalid_rows_eventually_colored(self):
        r1, r2, ccs = _invalid_instance()
        phase1 = run_phase1(r1, r2, ccs)
        assert len(phase1.assignment.invalid) == 2
        phase2 = run_phase2(
            r1, r2, [], phase1.assignment, phase1.catalog, "hid", ccs=ccs
        )
        assert phase2.stats.num_invalid_handled == 2
        assert len(phase2.coloring) == 3
        assert not phase1.assignment.invalid  # drained

    def test_invalid_rows_respect_dcs(self):
        r1, r2, ccs = _invalid_instance()
        dcs = [parse_dc("not(t1.Rel == 'Child' & t2.Rel == 'Child')")]
        phase1 = run_phase1(r1, r2, ccs)
        phase2 = run_phase2(
            r1, r2, dcs, phase1.assignment, phase1.catalog, "hid", ccs=ccs
        )
        assert dc_error(phase2.r1_hat, "hid", dcs) == 0.0
        # pairwise conflicting children → three distinct households
        assert len(set(phase2.r1_hat.column("hid"))) == 3

    def test_join_view_still_consistent(self):
        r1, r2, ccs = _invalid_instance()
        phase1 = run_phase1(r1, r2, ccs)
        phase2 = run_phase2(
            r1, r2, [], phase1.assignment, phase1.catalog, "hid", ccs=ccs
        )
        report = evaluate(phase2.r1_hat, phase2.r2_hat, "hid", ccs, [])
        # Invalid rows took the only existing key (no DCs forbid it), so
        # the CC gains two extra rows: error = 2 / max(10, 1).
        assert report.per_cc[0] == pytest.approx(0.2)

    def test_invalid_row_respects_asymmetric_dc_as_second_role(self):
        """Regression: the invalid row plays t2 of an asymmetric DC.

        Conflict enumeration used to pair invalid rows only in role t1,
        so an Owner invalid row slipped past ``not(t1.Spouse & t2.Owner)``
        and shared the Spouse's key.
        """
        r1 = Relation.from_columns(
            {
                "pid": list(range(10)),
                "Age": [0] * 8 + [1, 0],
                "Rel": ["Owner"] * 9 + ["Spouse"],
            },
            key="pid",
        )
        r2 = Relation.from_columns({"hid": [0], "Area": ["A"]}, key="hid")
        # Row 8 (Age 1) cannot take the only combo without breaking the
        # zero-target CC → it becomes an invalid tuple.
        ccs = [parse_cc("|Age in [1, 1] & Area == 'A'| = 0")]
        dcs = [parse_dc("not(t1.Rel == 'Spouse' & t2.Rel == 'Owner')")]
        phase1 = run_phase1(r1, r2, ccs)
        assert 8 in phase1.assignment.invalid
        phase2 = run_phase2(
            r1, r2, dcs, phase1.assignment, phase1.catalog, "hid", ccs=ccs
        )
        assert dc_error(phase2.r1_hat, "hid", dcs) == 0.0
        fk = phase2.r1_hat.column("hid")
        assert fk[8] != fk[9]  # Owner invalid row must avoid the Spouse key

    def test_min_error_combo_prefers_under_target(self):
        """A fresh-key invalid row chases the under-target CC."""
        r1 = Relation.from_columns(
            {"pid": [0, 1], "Age": [5, 5], "Rel": ["Child", "Child"]},
            key="pid",
        )
        r2 = Relation.from_columns(
            {"hid": [1, 2], "Area": ["Chicago", "NYC"]}, key="hid"
        )
        # Both CCs cover all combos → leftovers cannot be placed safely.
        ccs = [
            parse_cc("|Age in [0, 10] & Area == 'Chicago'| = 1"),
            parse_cc("|Age in [0, 10] & Area == 'NYC'| = 1"),
        ]
        phase1 = run_phase1(r1, r2, ccs)
        phase2 = run_phase2(
            r1, r2, [], phase1.assignment, phase1.catalog, "hid", ccs=ccs
        )
        report = evaluate(phase2.r1_hat, phase2.r2_hat, "hid", ccs, [])
        assert report.mean_cc_error == 0.0
