"""Shared fixtures: the paper's running example and a small census dataset."""

from __future__ import annotations

import pytest

from repro import Relation, parse_cc, parse_dc
from repro.datagen import CensusConfig, all_dcs, cc_family, generate_census


@pytest.fixture(scope="session")
def paper_r1() -> Relation:
    """Figure 1's Persons relation (without the missing hid column)."""
    return Relation.from_columns(
        {
            "pid": [1, 2, 3, 4, 5, 6, 7, 8, 9],
            "Age": [75, 75, 25, 25, 24, 10, 10, 30, 30],
            "Rel": ["Owner"] * 4 + ["Spouse", "Child", "Child", "Owner", "Owner"],
            "Multi": [0, 1, 0, 1, 0, 1, 1, 0, 1],
        },
        key="pid",
    )


@pytest.fixture(scope="session")
def paper_r2() -> Relation:
    """Figure 1's Housing relation."""
    return Relation.from_columns(
        {"hid": [1, 2, 3, 4, 5, 6], "Area": ["Chicago"] * 4 + ["NYC"] * 2},
        key="hid",
    )


@pytest.fixture(scope="session")
def paper_ccs():
    """Figure 2b's four cardinality constraints."""
    return [
        parse_cc("|Rel == 'Owner' & Area == 'Chicago'| = 4", name="CC1"),
        parse_cc("|Rel == 'Owner' & Area == 'NYC'| = 2", name="CC2"),
        parse_cc("|Age <= 24 & Area == 'Chicago'| = 3", name="CC3"),
        parse_cc("|Multi == 1 & Area == 'Chicago'| = 4", name="CC4"),
    ]


@pytest.fixture(scope="session")
def paper_dcs():
    """Figure 2a's five denial constraints."""
    return [
        parse_dc("not(t1.Rel == 'Owner' & t2.Rel == 'Owner')", name="DC_OO"),
        parse_dc(
            "not(t1.Rel == 'Owner' & t2.Rel == 'Spouse' & t2.Age < t1.Age - 50)",
            name="DC_OS_low",
        ),
        parse_dc(
            "not(t1.Rel == 'Owner' & t2.Rel == 'Spouse' & t2.Age > t1.Age + 50)",
            name="DC_OS_up",
        ),
        parse_dc(
            "not(t1.Rel == 'Owner' & t1.Multi == 1 & t2.Rel == 'Child' "
            "& t2.Age < t1.Age - 50)",
            name="DC_OC_low",
        ),
        parse_dc(
            "not(t1.Rel == 'Owner' & t1.Multi == 1 & t2.Rel == 'Child' "
            "& t2.Age > t1.Age - 12)",
            name="DC_OC_up",
        ),
    ]


@pytest.fixture(scope="session")
def census_small():
    """A deterministic small census dataset shared across test modules."""
    return generate_census(CensusConfig(n_households=120, n_areas=6, seed=11))


@pytest.fixture(scope="session")
def census_good_ccs(census_small):
    return cc_family(census_small, "good", 60)


@pytest.fixture(scope="session")
def census_bad_ccs(census_small):
    return cc_family(census_small, "bad", 60)


@pytest.fixture(scope="session")
def census_all_dcs():
    return all_dcs()
