"""Table 2 dataset registry."""

import pytest

from repro.datagen.workloads import DATASETS, census_spec, materialize
from repro.errors import ReproError
from repro.spec.api import synthesize


class TestRegistry:
    def test_all_34_rows_present(self):
        assert sorted(DATASETS) == list(range(1, 35))

    def test_rows_1_to_5_shape(self):
        for number, scale in zip(range(1, 6), (1, 2, 5, 10, 40)):
            spec = DATASETS[number]
            assert spec.scale == scale
            assert spec.dc_kind == "all" and spec.cc_kind == "good"

    def test_rows_6_to_10_are_bad_cc(self):
        assert all(DATASETS[n].cc_kind == "bad" for n in range(6, 11))

    def test_rows_11_12_good_dcs(self):
        assert DATASETS[11].dc_kind == "good"
        assert DATASETS[12].dc_kind == "good"
        assert DATASETS[12].cc_kind == "bad"

    def test_cc_count_ladder_13_to_22(self):
        for base in (13, 18):
            counts = [DATASETS[base + i].num_ccs for i in range(5)]
            assert counts == [500, 600, 700, 800, 900]

    def test_large_scale_rows_23_to_30(self):
        assert [DATASETS[n].scale for n in range(23, 27)] == [40, 80, 120, 160]
        assert [DATASETS[n].scale for n in range(27, 31)] == [40, 80, 120, 160]

    def test_housing_column_rows_31_to_34(self):
        assert [DATASETS[n].n_housing_columns for n in range(31, 35)] == [
            4, 6, 8, 10,
        ]

    def test_dcs_family_sizes(self):
        assert len({dc.name.split("_")[0] for dc in DATASETS[1].dcs()}) == 12
        assert len({dc.name.split("_")[0] for dc in DATASETS[11].dcs()}) == 8


class TestMaterialize:
    def test_small_materialization(self):
        spec = DATASETS[11]
        data, ccs, dcs = materialize(
            spec, num_ccs=25, mini_divisor=400, n_areas=4
        )
        assert len(ccs) == 25
        assert len(data.persons) > 0
        assert {dc.name.split("_")[0] for dc in dcs} == {
            f"dc{i}" for i in range(1, 9)
        }

    def test_housing_columns_follow_spec(self):
        data, _, _ = materialize(
            DATASETS[31], num_ccs=5, mini_divisor=400, n_areas=4
        )
        assert "County" in data.housing.schema
        assert "St" in data.housing.schema


class TestCensusSpec:
    def test_builds_runnable_two_relation_spec(self):
        spec = census_spec(
            11, num_ccs=6, num_dcs=3, mini_divisor=4000, n_areas=4
        )
        assert spec.name == "census-11"
        assert spec.fact_table == "persons"
        assert {r.name for r in spec.relations} == {"persons", "housing"}
        edge = spec.edges[0]
        assert (edge.child, edge.column, edge.parent) == (
            "persons", "hid", "housing"
        )
        assert len(edge.ccs) == 6
        assert len(edge.dcs) == 3
        result = synthesize(spec)
        fact = result.database.relation("persons")
        assert "hid" in fact.schema

    def test_deterministic_for_seed(self):
        a = census_spec(11, num_ccs=4, mini_divisor=4000, seed=3)
        b = census_spec(11, num_ccs=4, mini_divisor=4000, seed=3)
        assert a.to_dict() == b.to_dict()

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ReproError, match="unknown Table 2 dataset"):
            census_spec(99)
