"""The synthetic census generator."""

import pytest

from repro.core.metrics import dc_error
from repro.datagen import CensusConfig, all_dcs, generate_census
from repro.errors import ReproError


class TestGenerator:
    def test_deterministic(self):
        a = generate_census(CensusConfig(n_households=50, seed=4))
        b = generate_census(CensusConfig(n_households=50, seed=4))
        assert a.persons.to_rows() == b.persons.to_rows()
        assert a.housing.to_rows() == b.housing.to_rows()

    def test_different_seeds_differ(self):
        a = generate_census(CensusConfig(n_households=50, seed=1))
        b = generate_census(CensusConfig(n_households=50, seed=2))
        assert a.persons.to_rows() != b.persons.to_rows()

    def test_ground_truth_satisfies_all_dcs(self, census_small):
        assert dc_error(census_small.persons, "hid", all_dcs()) == 0.0

    def test_each_household_has_exactly_one_owner(self, census_small):
        owners = census_small.persons.select(
            __import__("repro").parse_predicate("Rel == 'Owner'")
        )
        assert len(set(owners.column("hid"))) == len(owners)
        assert len(owners) == census_small.config.n_households

    def test_persons_housing_ratio_close_to_paper(self):
        data = generate_census(CensusConfig(n_households=2000, seed=0))
        ratio = len(data.persons) / len(data.housing)
        assert 2.0 < ratio < 3.1  # paper: 25099 / 9820 ≈ 2.56

    def test_masked_view_drops_fk(self, census_small):
        assert "hid" not in census_small.persons_masked.schema
        assert "hid" in census_small.persons.schema

    def test_ground_truth_join_has_person_rows(self, census_small):
        join = census_small.ground_truth_join()
        assert len(join) == len(census_small.persons)
        assert "Area" in join.schema

    def test_ages_within_domain(self, census_small):
        ages = census_small.persons.column("Age")
        assert ages.min() >= 0 and ages.max() <= 114


class TestHousingLadder:
    @pytest.mark.parametrize(
        "n_cols,expected",
        [
            (2, ("hid", "Tenure", "Area")),
            (4, ("hid", "Tenure", "County", "Area", "St")),
            (6, ("hid", "Tenure", "County", "Area", "St", "Div", "Reg")),
        ],
    )
    def test_figure_12_column_ladder(self, n_cols, expected):
        data = generate_census(
            CensusConfig(n_households=30, n_housing_columns=n_cols)
        )
        assert data.housing.schema.names == expected

    def test_ten_columns(self):
        data = generate_census(
            CensusConfig(n_households=30, n_housing_columns=10)
        )
        assert len(data.housing.schema.names) == 11  # hid + 10

    def test_div_reg_functionally_determined_by_st(self):
        data = generate_census(
            CensusConfig(n_households=200, n_housing_columns=6)
        )
        mapping = {}
        for i in range(len(data.housing)):
            row = data.housing.row(i)
            key = row["St"]
            value = (row["Div"], row["Reg"])
            assert mapping.setdefault(key, value) == value

    def test_invalid_column_count_rejected(self):
        with pytest.raises(ReproError):
            CensusConfig(n_housing_columns=5)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ReproError):
            CensusConfig(n_households=0)
        with pytest.raises(ReproError):
            CensusConfig(n_tenures=99)
