"""The NAE-3SAT reduction (Proposition 2.8), executed both directions."""

import pytest

from repro.core.problem import brute_force_decision
from repro.datagen.nae3sat import (
    decode_assignment,
    nae_satisfiable,
    random_formula,
    reduce_to_cextension,
)
from repro.errors import ReproError


def _nae_check(formula, assignment):
    for clause in formula:
        values = [assignment[var] == pol for var, pol in clause]
        if all(values) or not any(values):
            return False
    return True


SATISFIABLE = [
    (("x", True), ("y", True), ("z", True)),
    (("x", False), ("y", False), ("z", True)),
]

# x ∨ x ∨ x in both polarities: NAE needs x true and false at once per
# clause — unsatisfiable in the not-all-equal sense.
UNSATISFIABLE = [
    (("x", True), ("x", True), ("x", True)),
    (("x", False), ("x", False), ("x", False)),
    (("x", True), ("x", False), ("y", True)),
    (("x", True), ("x", False), ("y", False)),
    (("y", True), ("y", True), ("y", True)),
    (("y", False), ("y", False), ("y", False)),
]


class TestOracle:
    def test_satisfiable_formula(self):
        assignment = nae_satisfiable(SATISFIABLE)
        assert assignment is not None
        assert _nae_check(SATISFIABLE, assignment)

    def test_unsatisfiable_formula(self):
        assert nae_satisfiable(UNSATISFIABLE) is None


class TestReduction:
    def test_structure(self):
        problem = reduce_to_cextension(SATISFIABLE)
        assert len(problem.r1) == 6  # 2 clauses × 3 literals
        assert len(problem.r2) == 2
        assert len(problem.dcs) == 2

    def test_empty_formula_rejected(self):
        with pytest.raises(ReproError):
            reduce_to_cextension([])

    def test_malformed_clause_rejected(self):
        with pytest.raises(ReproError):
            reduce_to_cextension([(("x", True), ("y", False))])

    def test_forward_direction(self):
        """A NAE-satisfying assignment yields a valid completion."""
        assignment = nae_satisfiable(SATISFIABLE)
        problem = reduce_to_cextension(SATISFIABLE)
        fk_values = []
        for clause in SATISFIABLE:
            for var, polarity in clause:
                fk_values.append(1 if assignment[var] == polarity else 0)
        assert problem.check(fk_values)

    def test_backward_direction(self):
        """Some witness decodes into a NAE assignment.

        Not *every* witness does: a single-polarity variable may take
        mixed keys without violating DC 1 (a gap in the paper's proof
        sketch that `decode_assignment` documents), so this test walks
        the completion space until it finds a decodable witness.
        """
        import itertools

        from repro.errors import ReproError

        problem = reduce_to_cextension(SATISFIABLE)
        keys = list(problem.r2.column("Chosen"))
        decoded = None
        for candidate in itertools.product(keys, repeat=len(problem.r1)):
            if not problem.check(list(candidate)):
                continue
            try:
                decoded = decode_assignment(SATISFIABLE, list(candidate))
                break
            except ReproError:
                continue  # spurious witness; keep looking
        assert decoded is not None
        assert _nae_check(SATISFIABLE, decoded)

    def test_spurious_witness_detected(self):
        """The counterexample completion is rejected by the decoder.

        Rows: clause 1 → (0, 0, 1), clause 2 → (1, 1, 0).  DCs hold, but
        `z` (positive-only) takes both keys and no assignment repairs it.
        """
        from repro.errors import ReproError

        problem = reduce_to_cextension(SATISFIABLE)
        witness = [0, 0, 1, 1, 1, 0]
        assert problem.check(witness)  # all DCs hold...
        with pytest.raises(ReproError):  # ...yet no NAE assignment exists
            decode_assignment(SATISFIABLE, witness)

    def test_unsatisfiable_has_no_witness(self):
        problem = reduce_to_cextension(UNSATISFIABLE)
        assert brute_force_decision(problem) is None

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_equivalence_on_random_formulas(self, seed):
        """Brute-force C-Extension agrees with the NAE oracle."""
        formula = random_formula(n_vars=3, n_clauses=3, seed=seed)
        problem = reduce_to_cextension(formula)
        witness = brute_force_decision(problem)
        oracle = nae_satisfiable(formula)
        assert (witness is not None) == (oracle is not None)
        if witness is not None:
            assert _nae_check(formula, decode_assignment(formula, witness))


class TestPipelineOnReduction:
    def test_pipeline_always_satisfies_dcs(self):
        """The heuristic may grow R2 but never violates a DC (Prop 5.5)."""
        from repro import CExtensionSolver
        from repro.core.metrics import dc_error

        for seed in range(3):
            formula = random_formula(n_vars=4, n_clauses=4, seed=seed)
            problem = reduce_to_cextension(formula)
            result = CExtensionSolver().solve(
                problem.r1, problem.r2,
                fk_column="Chosen", dcs=list(problem.dcs),
            )
            assert dc_error(result.r1_hat, "Chosen", list(problem.dcs)) == 0.0
