"""Table 1 scale ladder."""

import pytest

from repro.datagen.scales import (
    MINI_DIVISOR,
    PAPER_SCALES,
    generate_scaled,
    paper_row_counts,
    scaled_config,
)


class TestPaperScales:
    def test_table1_row_counts(self):
        assert paper_row_counts(1) == (25_099, 9_820)
        assert paper_row_counts(160) == (4_097_471, 1_571_200)

    def test_unknown_scale_rejected(self):
        with pytest.raises(KeyError):
            paper_row_counts(3)

    def test_housing_counts_scale_linearly(self):
        for scale, (_, housing) in PAPER_SCALES.items():
            assert housing == 9_820 * scale


class TestMiniLadder:
    def test_config_household_scaling(self):
        c1 = scaled_config(1)
        c2 = scaled_config(2)
        assert c2.n_households == pytest.approx(2 * c1.n_households, rel=0.02)

    def test_generated_sizes_track_scale(self):
        d1 = generate_scaled(1, mini_divisor=400)
        d2 = generate_scaled(2, mini_divisor=400)
        assert len(d2.housing) == pytest.approx(2 * len(d1.housing), rel=0.05)
        assert len(d2.persons) > len(d1.persons)

    def test_minimum_household_floor(self):
        config = scaled_config(1, mini_divisor=10**9)
        assert config.n_households >= 20

    def test_divisor_default(self):
        assert scaled_config(1).n_households == 9_820 // MINI_DIVISOR
