"""The retail snowflake workload and its end-to-end synthesis."""

import pytest

from repro.core.metrics import dc_error
from repro.core.snowflake import SnowflakeSynthesizer
from repro.datagen.retail import (
    RetailConfig,
    generate_retail,
    retail_constraints,
)
from repro.errors import ReproError
from repro.relational.join import fk_join


@pytest.fixture(scope="module")
def retail():
    return generate_retail(RetailConfig(
        n_orders=150, n_customers=30, n_products=20, n_suppliers=5, seed=5
    ))


class TestGenerator:
    def test_deterministic(self):
        a = generate_retail(RetailConfig(seed=1, n_orders=40))
        b = generate_retail(RetailConfig(seed=1, n_orders=40))
        assert a.truth_customer == b.truth_customer
        assert a.database.relation("Orders").to_rows() == \
            b.database.relation("Orders").to_rows()

    def test_schema_shape(self, retail):
        db = retail.database
        assert set(db.relation_names) == {
            "Orders", "Customers", "Products", "Suppliers",
        }
        order = [(fk.child, fk.parent) for fk in db.bfs_edges("Orders")]
        assert order == [
            ("Orders", "Customers"),
            ("Orders", "Products"),
            ("Products", "Suppliers"),
        ]

    def test_fks_masked(self, retail):
        assert "customer_id" not in retail.database.relation("Orders").schema
        assert "supplier_id" not in retail.database.relation("Products").schema

    def test_ground_truth_view(self, retail):
        view = retail.ground_truth_fact_view()
        assert len(view) == retail.config.n_orders
        assert "Region" in view.schema and "Category" in view.schema

    def test_invalid_config(self):
        with pytest.raises(ReproError):
            RetailConfig(n_orders=0)


class TestConstraints:
    def test_targets_are_true_counts(self, retail):
        constraints = retail_constraints(retail)
        truth = retail.ground_truth_fact_view()
        for edge_constraints in constraints.values():
            for cc in edge_constraints.ccs:
                assert truth.count(cc.predicate) == cc.target


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def solved(self):
        data = generate_retail(RetailConfig(
            n_orders=150, n_customers=30, n_products=20, n_suppliers=5,
            seed=5,
        ))
        constraints = retail_constraints(data)
        result = SnowflakeSynthesizer().solve(
            data.database, "Orders", constraints
        )
        return data, constraints, result

    def test_all_three_edges_completed(self, solved):
        _, _, result = solved
        assert len(result.steps) == 3
        out = result.database
        assert "customer_id" in out.relation("Orders").schema
        assert "supplier_id" in out.relation("Products").schema

    def test_fact_edge_ccs_exact(self, solved):
        _, constraints, result = solved
        db = result.database
        view = fk_join(db.relation("Orders"), db.relation("Customers"),
                       "customer_id")
        for cc in constraints[("Orders", "customer_id")].ccs:
            assert view.count(cc.predicate) == cc.target

    def test_multi_hop_ccs_exact(self, solved):
        _, constraints, result = solved
        db = result.database
        view = fk_join(db.relation("Orders"), db.relation("Customers"),
                       "customer_id")
        view = fk_join(
            view,
            db.relation("Products").drop_column("supplier_id"),
            "product_id",
        )
        for cc in constraints[("Orders", "product_id")].ccs:
            assert view.count(cc.predicate) == cc.target

    def test_supplier_dcs_hold(self, solved):
        _, constraints, result = solved
        products = result.database.relation("Products")
        dcs = list(constraints[("Products", "supplier_id")].dcs)
        assert dc_error(products, "supplier_id", dcs) == 0.0

    def test_joins_are_well_formed(self, solved):
        _, _, result = solved
        db = result.database
        fk_join(db.relation("Orders"), db.relation("Customers"), "customer_id")
        fk_join(db.relation("Products"), db.relation("Suppliers"),
                "supplier_id")
