"""Table 4 DCs and Table 5 CC families."""

import pytest

from repro.constraints.relationships import RelationshipTable
from repro.datagen import all_dcs, cc_family, good_dcs
from repro.datagen.constraints_census import (
    BAD_EXTRA_TEMPLATES,
    FLAT_TEMPLATES,
    GOOD_CHAINS,
)


class TestTable4:
    def test_good_is_prefix_of_all(self):
        good_names = [dc.name for dc in good_dcs()]
        all_names = [dc.name for dc in all_dcs()]
        assert all_names[: len(good_names)] == good_names

    def test_row_coverage(self):
        """All 12 Table 4 rows are represented."""
        rows = {dc.name.split("_")[0] for dc in all_dcs()}
        assert rows == {f"dc{i}" for i in range(1, 13)}

    def test_good_rows_are_1_to_8(self):
        rows = {dc.name.split("_")[0] for dc in good_dcs()}
        assert rows == {f"dc{i}" for i in range(1, 9)}

    def test_range_rows_have_low_and_up(self):
        names = {dc.name for dc in good_dcs()}
        assert "dc3_partner_low" in names and "dc3_partner_up" in names

    def test_dc9_catches_two_owners(self):
        dc9 = next(dc for dc in all_dcs() if dc.name == "dc9_two_owners")
        assert dc9.violates([{"Rel": "Owner"}, {"Rel": "Owner"}])
        assert not dc9.violates([{"Rel": "Owner"}, {"Rel": "Spouse"}])

    def test_dc1_age_window(self):
        low = next(dc for dc in all_dcs() if dc.name == "dc1_mono_child_low")
        up = next(dc for dc in all_dcs() if dc.name == "dc1_mono_child_up")
        owner = {"Rel": "Owner", "Age": 80, "Multi-ling": 0}
        too_old_child = {"Rel": "Biological child", "Age": 75}
        too_young_child = {"Rel": "Biological child", "Age": 5}
        fine_child = {"Rel": "Biological child", "Age": 30}
        assert up.violates([owner, too_old_child])
        assert low.violates([owner, too_young_child])
        assert not any(
            dc.violates([owner, fine_child]) for dc in (low, up)
        )

    def test_dc10_guards_young_owners(self):
        dc10 = next(dc for dc in all_dcs() if dc.name == "dc10_young_owner")
        young = {"Rel": "Owner", "Age": 25}
        old = {"Rel": "Owner", "Age": 45}
        grandchild = {"Rel": "Grandchild", "Age": 1}
        assert dc10.violates([young, grandchild])
        assert not dc10.violates([old, grandchild])


class TestTable5Families:
    def test_good_family_has_no_intersections(self, census_small):
        ccs = cc_family(census_small, "good", 120)
        r1_attrs = {"Rel", "Age", "Multi-ling"}
        r2_attrs = {"Tenure", "Area"}
        table = RelationshipTable.build(ccs, r1_attrs, r2_attrs)
        assert not table.has_intersections()

    def test_bad_family_has_intersections(self, census_small):
        ccs = cc_family(census_small, "bad", 120)
        r1_attrs = {"Rel", "Age", "Multi-ling"}
        r2_attrs = {"Tenure", "Area"}
        table = RelationshipTable.build(ccs, r1_attrs, r2_attrs)
        assert table.has_intersections()

    def test_targets_are_true_counts(self, census_small):
        ccs = cc_family(census_small, "good", 40)
        truth = census_small.ground_truth_join()
        for cc in ccs:
            assert truth.count(cc.predicate) == cc.target

    def test_requested_size_respected(self, census_small):
        assert len(cc_family(census_small, "good", 33)) == 33
        assert len(cc_family(census_small, "bad", 47)) == 47

    def test_unique_predicates(self, census_small):
        ccs = cc_family(census_small, "good", 150)
        predicates = [cc.predicate for cc in ccs]
        assert len(set(predicates)) == len(predicates)

    def test_unknown_kind_rejected(self, census_small):
        with pytest.raises(ValueError):
            cc_family(census_small, "ugly", 10)

    def test_flat_templates_pairwise_safe(self):
        """Flat templates must be disjoint or identical on R1."""
        for i, a in enumerate(FLAT_TEMPLATES):
            for b in FLAT_TEMPLATES[i + 1:]:
                pa, pb = a.predicate(), b.predicate()
                assert pa.is_disjoint_from(pb), (a, b)

    def test_chains_are_nested(self):
        for chain in GOOD_CHAINS:
            head = chain[0].predicate()
            for template in chain[1:]:
                assert template.predicate().is_subset_of(head)

    def test_chains_disjoint_from_flats(self):
        for chain in GOOD_CHAINS:
            for template in chain:
                for flat in FLAT_TEMPLATES:
                    assert template.predicate().is_disjoint_from(
                        flat.predicate()
                    ), (template, flat)

    def test_bad_extras_overlap_something(self):
        """Each bad template overlaps some flat/chain template without
        being contained-or-disjoint — the source of intersections."""
        all_good = list(FLAT_TEMPLATES) + [
            t for chain in GOOD_CHAINS for t in chain
        ]
        for bad in BAD_EXTRA_TEMPLATES:
            pb = bad.predicate()
            overlapping = [
                g
                for g in all_good
                if not pb.is_disjoint_from(g.predicate())
            ]
            assert overlapping, bad
