"""Schema validation and manipulation."""

import pytest

from repro.errors import SchemaError
from repro.relational.schema import ColumnSpec, Schema
from repro.relational.types import CatDomain, Dtype, IntDomain


def _schema():
    return Schema(
        [
            ColumnSpec("pid", Dtype.INT),
            ColumnSpec("Age", Dtype.INT, IntDomain(0, 114)),
            ColumnSpec("Rel", Dtype.STR),
        ],
        key="pid",
    )


class TestColumnSpec:
    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            ColumnSpec("", Dtype.INT)

    def test_domain_dtype_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            ColumnSpec("Age", Dtype.STR, IntDomain(0, 10))
        with pytest.raises(SchemaError):
            ColumnSpec("Rel", Dtype.INT, CatDomain(["a"]))


class TestSchema:
    def test_names_and_key(self):
        schema = _schema()
        assert schema.names == ("pid", "Age", "Rel")
        assert schema.key == "pid"
        assert schema.nonkey_names == ("Age", "Rel")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([ColumnSpec("a", Dtype.INT), ColumnSpec("a", Dtype.STR)])

    def test_missing_key_rejected(self):
        with pytest.raises(SchemaError):
            Schema([ColumnSpec("a", Dtype.INT)], key="b")

    def test_spec_lookup(self):
        schema = _schema()
        assert schema.spec("Age").dtype is Dtype.INT
        assert schema.domain("Age") == IntDomain(0, 114)
        with pytest.raises(SchemaError):
            schema.spec("missing")

    def test_contains_and_iteration(self):
        schema = _schema()
        assert "Age" in schema and "missing" not in schema
        assert len(schema) == 3
        assert [c.name for c in schema] == ["pid", "Age", "Rel"]

    def test_require(self):
        schema = _schema()
        schema.require(["Age", "Rel"])  # no raise
        with pytest.raises(SchemaError):
            schema.require(["Age", "missing"])

    def test_project_keeps_key_when_present(self):
        schema = _schema()
        projected = schema.project(["pid", "Age"])
        assert projected.key == "pid"
        dropped = schema.project(["Age"])
        assert dropped.key is None

    def test_extend(self):
        schema = _schema().extend([ColumnSpec("hid", Dtype.INT)])
        assert schema.names[-1] == "hid"
        assert schema.key == "pid"
