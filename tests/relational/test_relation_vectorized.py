"""Equivalence of the vectorised Relation kernels and their naive references.

Property-style: randomized relations (mixed INT/STR columns, duplicate-heavy
and near-unique regimes, empty and single-row edge cases) must produce
identical results from the lexsort-and-split kernels and the per-row loops.
"""

import numpy as np
import pytest

from repro.core.metrics import dc_error, dc_error_naive
from repro.constraints.parser import parse_dc
from repro.errors import SchemaError
from repro.relational.join import fk_join, fk_join_naive
from repro.relational.ordering import sort_key, tuple_sort_key
from repro.relational.relation import Relation
from repro.relational.schema import ColumnSpec, Schema
from repro.relational.types import Dtype

AREAS = ["Chicago", "NYC", "Boston", "LA", "Detroit", "Austin"]


def random_relation(rng: np.random.Generator, n: int, cardinality: int) -> Relation:
    """A relation with one INT and two STR columns plus a unique key."""
    return Relation.from_columns(
        {
            "pid": list(range(n)),
            "Age": rng.integers(0, max(cardinality, 1), size=n).tolist(),
            "Area": [AREAS[i % len(AREAS)] for i in rng.integers(0, max(cardinality, 1), size=n)],
            "Rel": [f"rel{i}" for i in rng.integers(0, 3, size=n)],
        },
        key="pid",
    )


CASES = [(0, 4), (1, 1), (2, 1), (7, 2), (64, 3), (200, 50), (200, 1000)]


@pytest.mark.parametrize("n,cardinality", CASES)
@pytest.mark.parametrize("names", [["Age"], ["Area"], ["Age", "Area", "Rel"]])
def test_group_ops_match_naive(n, cardinality, names):
    rng = np.random.default_rng(n * 1000 + cardinality)
    relation = random_relation(rng, n, cardinality)

    assert relation.group_counts(names) == relation.group_counts_naive(names)

    fast = relation.group_indices(names)
    slow = relation.group_indices_naive(names)
    assert set(fast) == set(slow)
    for key, indices in slow.items():
        assert np.array_equal(fast[key], indices)

    assert relation.distinct(names) == relation.distinct_naive(names)


@pytest.mark.parametrize("n,cardinality", CASES)
def test_key_index_matches_naive(n, cardinality):
    rng = np.random.default_rng(n * 7 + cardinality)
    relation = random_relation(rng, n, cardinality)
    assert relation.key_index() == relation.key_index_naive()


@pytest.mark.parametrize("n", [0, 1, 5, 50])
def test_fk_join_matches_naive(n):
    rng = np.random.default_rng(n)
    r2 = Relation.from_columns(
        {"hid": list(range(10, 18)), "Area": [AREAS[i % 6] for i in range(8)]},
        key="hid",
    )
    r1 = Relation.from_columns(
        {
            "pid": list(range(n)),
            "Age": rng.integers(0, 90, size=n).tolist(),
            "hid": rng.integers(10, 18, size=n).tolist(),
        },
        key="pid",
    )
    fast = fk_join(r1, r2, "hid")
    slow = fk_join_naive(r1, r2, "hid")
    assert fast.schema.names == slow.schema.names
    assert fast.to_rows() == slow.to_rows()


def test_fk_join_string_keys():
    r2 = Relation.from_columns(
        {"hid": ["h2", "h10", "h1"], "Area": ["a", "b", "c"]}, key="hid"
    )
    r1 = Relation.from_columns(
        {"pid": [1, 2, 3, 4], "hid": ["h10", "h1", "h10", "h2"]}, key="pid"
    )
    assert fk_join(r1, r2, "hid").to_rows() == fk_join_naive(r1, r2, "hid").to_rows()


def test_fk_join_dangling_and_duplicate_keys_rejected():
    r2 = Relation.from_columns({"hid": [1, 2], "Area": ["a", "b"]}, key="hid")
    r1 = Relation.from_columns({"pid": [1], "hid": [9]}, key="pid")
    with pytest.raises(SchemaError):
        fk_join(r1, r2, "hid")
    dup = Relation.from_columns({"hid": [1, 1], "Area": ["a", "b"]}, key="hid")
    ok = Relation.from_columns({"pid": [1], "hid": [1]}, key="pid")
    with pytest.raises(SchemaError):
        fk_join(ok, dup, "hid")


def test_key_positions_vectorized_lookup():
    relation = Relation.from_columns({"k": [30, 10, 20], "v": [1, 2, 3]}, key="k")
    assert relation.key_positions([20, 30, 30]).tolist() == [2, 0, 0]
    with pytest.raises(SchemaError):
        relation.key_positions([99])
    empty = Relation.from_columns({"k": [], "v": []}, key="k")
    assert len(empty.key_positions([])) == 0
    with pytest.raises(SchemaError):
        empty.key_positions([1])


def test_key_positions_does_not_coerce_lookup_values():
    """'7' and 7.9 must not silently match integer key 7."""
    relation = Relation.from_columns({"k": [5, 7], "v": [0, 1]}, key="k")
    with pytest.raises(SchemaError):
        relation.key_positions(np.asarray(["7"], dtype=object))
    with pytest.raises(SchemaError):
        relation.key_positions([7.9])
    assert relation.key_positions([7.0]).tolist() == [1]


def test_mixed_type_object_column_falls_back():
    """Unsortable mixed values must still group and look up correctly."""
    schema = Schema(
        [ColumnSpec("k", Dtype.STR), ColumnSpec("v", Dtype.INT)], key="k"
    )
    relation = Relation(
        schema,
        {
            "k": np.asarray([1, "x", 2, "x", 1], dtype=object),
            "v": np.asarray([0, 1, 2, 3, 4], dtype=np.int64),
        },
    )
    assert relation.group_counts(["k"]) == relation.group_counts_naive(["k"])
    assert relation.distinct(["k"]) == relation.distinct_naive(["k"])
    keyed = Relation(
        schema,
        {
            "k": np.asarray([1, "x", 2], dtype=object),
            "v": np.asarray([0, 1, 2], dtype=np.int64),
        },
    )
    assert keyed.key_positions(np.asarray(["x", 1], dtype=object)).tolist() == [1, 0]


def test_group_counts_empty_names():
    relation = Relation.from_columns({"a": [1, 2, 3]})
    assert relation.group_counts([]) == relation.group_counts_naive([]) == {(): 3}
    empty = Relation.from_columns({"a": []})
    assert empty.group_counts([]) == empty.group_counts_naive([]) == {}


@pytest.mark.parametrize("n", [0, 1, 2, 40])
def test_dc_error_matches_naive(n):
    rng = np.random.default_rng(n + 99)
    r1_hat = Relation.from_columns(
        {
            "pid": list(range(n)),
            "Age": rng.integers(0, 5, size=n).tolist(),
            "Rel": [["Owner", "Child"][i] for i in rng.integers(0, 2, size=n)],
            "hid": rng.integers(0, max(n // 3, 1), size=n).tolist(),
        },
        key="pid",
    )
    dcs = [
        parse_dc("not(t1.Rel == 'Owner' & t2.Rel == 'Owner')"),
        parse_dc("not(t1.Age < t2.Age - 3)"),
    ]
    assert dc_error(r1_hat, "hid", dcs) == dc_error_naive(r1_hat, "hid", dcs)


class TestCanonicalOrdering:
    def test_integers_sort_numerically(self):
        relation = Relation.from_columns({"a": [10, 9, 2, 100]})
        assert relation.distinct(["a"]) == [(2,), (9,), (10,), (100,)]

    def test_numbers_before_strings(self):
        values = ["b", 10, "a", 2]
        assert sorted(values, key=sort_key) == [2, 10, "a", "b"]

    def test_numpy_scalars_order_like_python(self):
        values = [np.int64(10), 9, np.int64(2)]
        assert sorted(values, key=sort_key) == [np.int64(2), 9, np.int64(10)]

    def test_tuple_key_is_elementwise(self):
        combos = [(10, "b"), (9, "a"), (9, "b"), (2, "z")]
        assert sorted(combos, key=tuple_sort_key) == [
            (2, "z"), (9, "a"), (9, "b"), (10, "b"),
        ]
