"""Unit tests for the column-store backends and chunked relation kernels."""

import json
import pickle

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.relational import (
    ColumnSpec,
    CompositeStore,
    Dtype,
    MmapColumnStore,
    MmapStoreWriter,
    NumpyColumnStore,
    Relation,
    Schema,
    StorageOptions,
)
from repro.relational.predicate import Interval, Predicate, ValueSet


def _sample_relation(n=500, seed=0):
    rng = np.random.default_rng(seed)
    schema = Schema(
        [
            ColumnSpec("id", Dtype.INT),
            ColumnSpec("cat", Dtype.STR),
            ColumnSpec("v", Dtype.INT),
        ],
        key="id",
    )
    return Relation(
        schema,
        {
            "id": np.arange(n),
            "cat": np.asarray(
                [f"k{int(i) % 7}" for i in rng.integers(0, 50, n)],
                dtype=object,
            ),
            "v": rng.integers(0, 20, n),
        },
    )


class TestMmapStore:
    def test_roundtrip_values(self, tmp_path):
        rel = _sample_relation()
        disk = rel.to_store(chunk_rows=64, directory=tmp_path / "s")
        assert disk.is_chunked and disk.chunk_rows == 64
        for name in rel.schema.names:
            assert np.array_equal(rel.column(name), disk.column(name))

    def test_column_files_are_real_npy(self, tmp_path):
        rel = _sample_relation(100)
        disk = rel.to_store(chunk_rows=32, directory=tmp_path / "s")
        manifest = json.loads((tmp_path / "s" / "manifest.json").read_text())
        by_name = {c["name"]: c for c in manifest["columns"]}
        loaded = np.load(tmp_path / "s" / by_name["id"]["file"])
        assert np.array_equal(loaded, rel.column("id"))
        # Dictionary-encoded column: codes on disk + dictionary in the
        # manifest reconstruct the values.
        codes = np.load(tmp_path / "s" / by_name["cat"]["file"])
        decode = np.asarray(manifest["dictionaries"]["cat"], dtype=object)
        assert np.array_equal(decode[codes], rel.column("cat"))

    def test_pickles_as_directory_path(self, tmp_path):
        rel = _sample_relation(50)
        disk = rel.to_store(chunk_rows=16, directory=tmp_path / "s")
        clone = pickle.loads(pickle.dumps(disk.store))
        assert isinstance(clone, MmapColumnStore)
        assert np.array_equal(clone.column("cat"), rel.column("cat"))

    def test_empty_relation(self, tmp_path):
        rel = Relation.empty(_sample_relation(1).schema)
        disk = rel.to_store(chunk_rows=4, directory=tmp_path / "s")
        assert len(disk) == 0
        assert disk.group_counts(("cat", "v")) == {}
        assert disk.distinct(("cat",)) == []
        assert list(disk.store.chunk_bounds()) == []

    def test_not_a_store_errors(self, tmp_path):
        with pytest.raises(SchemaError):
            MmapColumnStore(tmp_path)

    def test_writer_rejects_ragged_blocks(self, tmp_path):
        writer = MmapStoreWriter(
            tmp_path / "s", [("a", "int"), ("b", "int")], chunk_rows=8
        )
        with pytest.raises(SchemaError):
            writer.append({"a": [1, 2], "b": [1]})

    def test_writer_rejects_unserialisable_dictionary(self, tmp_path):
        writer = MmapStoreWriter(tmp_path / "s", [("a", "dict")])
        values = np.empty(1, dtype=object)
        values[0] = frozenset({"t"})  # hashable but not JSON-serialisable
        writer.append({"a": values})
        with pytest.raises(SchemaError):
            writer.finalize()

    def test_temp_directory_lifecycle(self):
        rel = _sample_relation(20)
        disk = rel.to_store(chunk_rows=8)  # no directory: temp-owned
        directory = disk.store.directory
        assert (directory / "manifest.json").exists()
        assert np.array_equal(disk.column("id"), rel.column("id"))

    def test_colliding_directory_is_rejected(self, tmp_path):
        target = tmp_path / "spill"
        _sample_relation(20).to_store(chunk_rows=8, directory=target)
        with pytest.raises(SchemaError, match="already exists"):
            MmapStoreWriter(target, [("a", "int")])
        # An empty pre-existing directory is fine (mkdir -p semantics).
        empty = tmp_path / "empty"
        empty.mkdir()
        writer = MmapStoreWriter(empty, [("a", "int")])
        writer.append({"a": np.asarray([1, 2], dtype=np.int64)})
        writer.finalize()

    def test_discard_removes_partial_named_directory(self, tmp_path):
        target = tmp_path / "partial"
        writer = MmapStoreWriter(target, [("a", "int"), ("b", "dict")])
        writer.append(
            {
                "a": np.asarray([1, 2], dtype=np.int64),
                "b": np.asarray(["x", "y"], dtype=object),
            }
        )
        writer.discard()
        assert not target.exists()
        # The collision check no longer trips: the path is reusable.
        MmapStoreWriter(target, [("a", "int")]).finalize()

    def test_discard_after_finalize_keeps_store(self, tmp_path):
        target = tmp_path / "live"
        writer = MmapStoreWriter(target, [("a", "int")])
        writer.append({"a": np.asarray([3, 1], dtype=np.int64)})
        store = writer.finalize()
        writer.discard()  # no-op: never deletes a live store
        assert (target / "manifest.json").exists()
        np.testing.assert_array_equal(
            store.column("a"), np.asarray([3, 1], dtype=np.int64)
        )

    def test_aborted_to_store_cleans_up(self, tmp_path):
        rel = _sample_relation(20)
        target = tmp_path / "abort"
        values = np.empty(1, dtype=object)
        values[0] = frozenset({"t"})  # finalize() rejects this dictionary
        bad = Relation(
            Schema([ColumnSpec("c", Dtype.STR)]), {"c": values}
        )
        with pytest.raises(SchemaError):
            bad.to_store(chunk_rows=8, directory=target)
        assert not target.exists()
        # A later run can claim the same storage_dir.
        disk = rel.to_store(chunk_rows=8, directory=target)
        assert np.array_equal(disk.column("id"), rel.column("id"))


class TestChunkedKernels:
    @pytest.mark.parametrize("chunk_rows", [1, 7, 64, 10_000])
    def test_group_kernels_match_in_ram(self, chunk_rows):
        rel = _sample_relation()
        disk = rel.to_store(chunk_rows=chunk_rows)
        for names in [("cat",), ("v",), ("cat", "v"), ("v", "cat"), ()]:
            assert rel.group_counts(names) == disk.group_counts(names)
            ram, ooc = rel.group_indices(names), disk.group_indices(names)
            assert list(ram) == list(ooc)
            for key in ram:
                assert np.array_equal(ram[key], ooc[key])
            assert rel.distinct(names) == disk.distinct(names)

    def test_codes_match_in_ram(self):
        rel = _sample_relation()
        disk = rel.to_store(chunk_rows=37)
        for name in ("cat", "v"):
            ram_codes, ram_uniques = rel.codes(name)
            ooc_codes, ooc_uniques = disk.codes(name)
            assert np.array_equal(ram_codes, ooc_codes)
            assert np.array_equal(ram_uniques, ooc_uniques)

    def test_mask_streams_through_dictionary(self):
        rel = _sample_relation()
        disk = rel.to_store(chunk_rows=37)
        predicate = Predicate(
            {"cat": ValueSet(frozenset({"k1", "k3"})), "v": Interval(3, 15)}
        )
        assert np.array_equal(rel.mask(predicate), disk.mask(predicate))

    def test_key_lookup_and_rows(self):
        rel = _sample_relation()
        disk = rel.to_store(chunk_rows=37)
        lookups = [5, 499, 0, 123]
        assert np.array_equal(
            rel.key_positions(lookups), disk.key_positions(lookups)
        )
        assert rel.row(17) == disk.row(17)
        assert rel.row_tuple(3) == disk.row_tuple(3)

    def test_with_column_overlays_without_rewriting(self, tmp_path):
        rel = _sample_relation(64)
        disk = rel.to_store(chunk_rows=16, directory=tmp_path / "s")
        extra = np.arange(64) * 3
        grown = disk.with_column(ColumnSpec("w", Dtype.INT), extra)
        assert grown.is_chunked
        assert isinstance(grown.store, CompositeStore)
        assert np.array_equal(grown.column("w"), extra)
        # The original column files were not rewritten.
        assert set(p.name for p in (tmp_path / "s").iterdir()) == {
            "manifest.json", "col_0.npy", "col_1.npy", "col_2.npy",
        }

    def test_project_and_drop_stay_chunked(self):
        rel = _sample_relation()
        disk = rel.to_store(chunk_rows=37)
        projected = disk.project(["v", "cat"])
        assert projected.is_chunked
        assert projected.schema.names == ("v", "cat")
        assert projected.group_counts(("v",)) == rel.group_counts(("v",))
        assert disk.drop_column("v").schema.names == ("id", "cat")

    def test_csv_export_matches(self, tmp_path):
        from repro.relational import write_csv

        rel = _sample_relation(100)
        disk = rel.to_store(chunk_rows=9)
        ram_csv, ooc_csv = tmp_path / "ram.csv", tmp_path / "ooc.csv"
        write_csv(rel, ram_csv)
        write_csv(disk, ooc_csv)
        assert ram_csv.read_text() == ooc_csv.read_text()


class TestFrozenColumns:
    def test_columns_are_read_only(self):
        rel = _sample_relation(10)
        with pytest.raises(ValueError):
            rel.column("v")[0] = 99
        with pytest.raises(ValueError):
            rel.columns["cat"][0] = "x"

    def test_projection_shares_frozen_arrays(self):
        rel = _sample_relation(10)
        projected = rel.project(["v"])
        with pytest.raises(ValueError):
            projected.column("v")[0] = 99


class TestStorageOptions:
    def test_validation(self):
        with pytest.raises(SchemaError):
            StorageOptions(storage="feather")
        with pytest.raises(SchemaError):
            StorageOptions(chunk_rows=0)

    def test_relation_directory(self, tmp_path):
        options = StorageOptions(storage="mmap", directory=str(tmp_path))
        assert options.relation_directory("events") == tmp_path / "events"
        assert StorageOptions().relation_directory("events") is None


class TestNumpyStoreContract:
    def test_single_chunk(self):
        store = NumpyColumnStore({"a": np.arange(5)})
        assert not store.is_chunked
        assert list(store.chunk_bounds()) == [(0, 5)]
        with pytest.raises(SchemaError):
            store.codes_slice("a", 0, 5)
        assert store.dictionary("a") is None

    def test_composite_rejects_ragged_parts(self):
        a = NumpyColumnStore({"a": np.arange(5)})
        b = NumpyColumnStore({"b": np.arange(6)})
        with pytest.raises(SchemaError):
            CompositeStore({"a": (a, "a"), "b": (b, "b")})
