"""Foreign-key joins and the join-view schema."""

import pytest

from repro.errors import SchemaError
from repro.relational.join import fk_join, join_view_schema
from repro.relational.relation import Relation


@pytest.fixture
def r1():
    return Relation.from_columns(
        {"pid": [1, 2, 3], "Age": [30, 40, 50], "hid": [10, 10, 20]},
        key="pid",
    )


@pytest.fixture
def r2():
    return Relation.from_columns(
        {"hid": [10, 20], "Area": ["Chicago", "NYC"]}, key="hid"
    )


class TestJoinViewSchema:
    def test_schema_without_fk(self, r1, r2):
        schema = join_view_schema(r1, r2, "hid")
        assert schema.names == ("pid", "Age", "Area")
        assert schema.key == "pid"

    def test_schema_with_fk(self, r1, r2):
        schema = join_view_schema(r1, r2, "hid", include_fk=True)
        assert schema.names == ("pid", "Age", "hid", "Area")

    def test_requires_r2_key(self, r1):
        keyless = Relation.from_columns({"hid": [1], "Area": ["x"]})
        with pytest.raises(SchemaError):
            join_view_schema(r1, keyless, "hid")

    def test_column_collision_rejected(self, r1):
        clashing = Relation.from_columns(
            {"hid": [10], "Age": [99]}, key="hid"
        )
        with pytest.raises(SchemaError):
            join_view_schema(r1, clashing, "hid")


class TestFkJoin:
    def test_one_row_per_r1_row(self, r1, r2):
        joined = fk_join(r1, r2, "hid")
        assert len(joined) == len(r1)
        assert list(joined.column("Area")) == ["Chicago", "Chicago", "NYC"]

    def test_projection(self, r1, r2):
        joined = fk_join(r1, r2, "hid", output_columns=["pid", "Area"])
        assert joined.schema.names == ("pid", "Area")

    def test_dangling_fk_rejected(self, r2):
        bad = Relation.from_columns(
            {"pid": [1], "Age": [30], "hid": [99]}, key="pid"
        )
        with pytest.raises(SchemaError):
            fk_join(bad, r2, "hid")

    def test_missing_fk_column_rejected(self, r2):
        no_fk = Relation.from_columns({"pid": [1], "Age": [30]}, key="pid")
        with pytest.raises(SchemaError):
            fk_join(no_fk, r2, "hid")
