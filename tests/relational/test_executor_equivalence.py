"""Executor equivalence: SQL pushdown is byte-identical to numpy.

The kernel-executor contract says every engine — in-RAM numpy, chunked
mmap numpy, and the SQL pushdown backends — returns *identical* Python
objects from the relational kernels: same values, same dict ordering,
same error messages.  Hypothesis drives random relations through
``group_counts`` / ``distinct`` / ``fk_join`` / ``count_ccs`` /
``dc_error`` on all available engines; deterministic tests pin the
corner cases (empty relations, empty-string categories, duplicate /
missing FK keys) and the Phase-II ``group_by_combo`` partitioner.

DuckDB legs run only where the optional package is installed; the
sqlite legs always run (stdlib).  ``SQLExecutor.stats`` assertions make
sure the SQL engine genuinely pushed the kernels down instead of
passing silently via its numpy delegation path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.constraints.cc import CardinalityConstraint
from repro.constraints.dc import BinaryAtom, DenialConstraint, UnaryAtom
from repro.errors import SchemaError
from repro.relational.executor import NUMPY_EXECUTOR, duckdb_available
from repro.relational.predicate import Interval, Predicate, ValueSet
from repro.relational.relation import Relation
from repro.relational.schema import ColumnSpec, Schema
from repro.relational.sql_backend import SQLExecutor
from repro.relational.types import Dtype

ENGINES = [
    "sqlite",
    pytest.param(
        "duckdb",
        marks=pytest.mark.skipif(
            not duckdb_available(), reason="duckdb not installed"
        ),
    ),
]

_CATS = ["db", "ai", "os", ""]


def _relation(fks, ages, cats, key=None):
    schema = Schema(
        [
            ColumnSpec("fk", Dtype.INT),
            ColumnSpec("age", Dtype.INT),
            ColumnSpec("cat", Dtype.STR),
        ],
        key=key,
    )
    return Relation(
        schema,
        {
            "fk": np.asarray(fks, dtype=np.int64),
            "age": np.asarray(ages, dtype=np.int64),
            "cat": np.asarray(cats, dtype=object),
        },
    )


def _parent(keys, caps):
    schema = Schema(
        [ColumnSpec("id", Dtype.INT), ColumnSpec("cap", Dtype.INT)],
        key="id",
    )
    return Relation(
        schema,
        {
            "id": np.asarray(keys, dtype=np.int64),
            "cap": np.asarray(caps, dtype=np.int64),
        },
    )


def _assert_same_join(a: Relation, b: Relation) -> None:
    assert a.schema == b.schema
    assert len(a) == len(b)
    for name in a.schema.names:
        assert np.array_equal(a.column(name), b.column(name)), name


@st.composite
def _child_data(draw):
    n = draw(st.integers(0, 25))
    fks = draw(st.lists(st.integers(1, 5), min_size=n, max_size=n))
    ages = draw(st.lists(st.integers(0, 60), min_size=n, max_size=n))
    cats = draw(st.lists(st.sampled_from(_CATS), min_size=n, max_size=n))
    return fks, ages, cats


class TestKernelEquivalence:
    """Random workloads agree across RAM / chunked / SQL engines."""

    @pytest.mark.parametrize("engine", ENGINES)
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=_child_data(), chunk_rows=st.sampled_from([1, 3, 1024]))
    def test_group_counts_distinct(self, engine, data, chunk_rows):
        fks, ages, cats = data
        ram = _relation(fks, ages, cats)
        chunked = ram.to_store(chunk_rows=chunk_rows)
        ex = SQLExecutor(engine)
        for names in (["age"], ["cat"], ["age", "cat"], ["fk", "cat"]):
            base = NUMPY_EXECUTOR.group_counts(ram, names)
            for other in (
                NUMPY_EXECUTOR.group_counts(chunked, names),
                ex.group_counts(ram, names),
                ex.group_counts(chunked, names),
            ):
                assert base == other
                # Dict *ordering* is part of the contract too.
                assert list(base.items()) == list(other.items())
            base_distinct = NUMPY_EXECUTOR.distinct(ram, names)
            assert base_distinct == ex.distinct(ram, names)
            assert base_distinct == ex.distinct(chunked, names)
        if len(ram):
            assert ex.stats["pushed"] > 0
            assert ex.stats["delegated"] == 0

    @pytest.mark.parametrize("engine", ENGINES)
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=_child_data(), chunk_rows=st.sampled_from([1, 4, 1024]))
    def test_fk_join(self, engine, data, chunk_rows):
        fks, ages, cats = data
        ram = _relation(fks, ages, cats)
        chunked = ram.to_store(chunk_rows=chunk_rows)
        parent = _parent([1, 2, 3, 4, 5], [10, 20, 30, 40, 50])
        ex = SQLExecutor(engine)
        base = NUMPY_EXECUTOR.fk_join(ram, parent, "fk")
        _assert_same_join(base, NUMPY_EXECUTOR.fk_join(chunked, parent, "fk"))
        _assert_same_join(base, ex.fk_join(ram, parent, "fk"))
        _assert_same_join(base, ex.fk_join(chunked, parent, "fk"))
        if len(ram):
            assert ex.stats["pushed"] > 0
            assert ex.stats["delegated"] == 0

    @pytest.mark.parametrize("engine", ENGINES)
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=_child_data(), chunk_rows=st.sampled_from([1, 4, 1024]))
    def test_count_ccs_and_dc_error(self, engine, data, chunk_rows):
        fks, ages, cats = data
        ram = _relation(fks, ages, cats)
        chunked = ram.to_store(chunk_rows=chunk_rows)
        ex = SQLExecutor(engine)
        ccs = [
            CardinalityConstraint(Predicate({"age": Interval(10, 40)}), 3),
            CardinalityConstraint(
                [
                    Predicate({"cat": ValueSet(["db", ""])}),
                    Predicate({"age": Interval(50, 60)}),
                ],
                2,
            ),
        ]
        dcs = [
            DenialConstraint(
                [
                    UnaryAtom(0, "cat", "==", "db"),
                    UnaryAtom(1, "cat", "==", "db"),
                ]
            ),
            DenialConstraint([BinaryAtom(0, "age", "<", 1, "age", -5)]),
        ]
        base_ccs = NUMPY_EXECUTOR.count_ccs(ram, ccs)
        assert base_ccs == NUMPY_EXECUTOR.count_ccs(chunked, ccs)
        assert base_ccs == ex.count_ccs(ram, ccs)
        assert base_ccs == ex.count_ccs(chunked, ccs)
        base_dc = NUMPY_EXECUTOR.dc_error(ram, "fk", dcs)
        assert base_dc == NUMPY_EXECUTOR.dc_error(chunked, "fk", dcs)
        assert base_dc == ex.dc_error(ram, "fk", dcs)
        assert base_dc == ex.dc_error(chunked, "fk", dcs)
        if len(ram):
            assert ex.stats["pushed"] > 0


@pytest.mark.parametrize("engine", ENGINES)
class TestErrorEquivalence:
    """SQL engines reproduce numpy's exact error messages and ordering."""

    def _message(self, executor, r1, r2):
        with pytest.raises(SchemaError) as excinfo:
            executor.fk_join(r1, r2, "fk")
        return str(excinfo.value)

    def test_duplicate_key_message(self, engine):
        r1 = _relation([1, 2], [10, 20], ["db", "ai"])
        r2 = _parent([2, 1, 2, 3], [1, 2, 3, 4])
        ex = SQLExecutor(engine)
        assert self._message(ex, r1, r2) == self._message(
            NUMPY_EXECUTOR, r1, r2
        )

    def test_duplicate_beats_missing_on_empty_child(self, engine):
        r1 = _relation([], [], [])
        r2 = _parent([1, 1], [1, 2])
        ex = SQLExecutor(engine)
        assert self._message(ex, r1, r2) == self._message(
            NUMPY_EXECUTOR, r1, r2
        )

    def test_missing_key_message_first_row_order(self, engine):
        # Both 9 and 7 are missing; numpy reports the first missing *by
        # child row order* (9), not by value.
        r1 = _relation([9, 7, 1], [10, 20, 30], ["db", "ai", "os"])
        r2 = _parent([1, 2], [1, 2])
        ex = SQLExecutor(engine)
        assert self._message(ex, r1, r2) == self._message(
            NUMPY_EXECUTOR, r1, r2
        )


@pytest.mark.parametrize("engine", ENGINES)
class TestCornerCases:
    def test_empty_relation(self, engine):
        r0 = _relation([], [], [])
        ex = SQLExecutor(engine)
        assert ex.group_counts(r0, ["age", "cat"]) == {}
        assert ex.distinct(r0, ["cat"]) == []
        cc = CardinalityConstraint(Predicate({"age": Interval(0, 9)}), 1)
        assert ex.count_ccs(r0, [cc]) == [0]
        assert ex.dc_error(r0, "fk", []) == 0.0

    def test_scalar_types_match(self, engine):
        # Keys must be plain Python scalars on every engine (np.int64
        # keys would break dict lookups downstream).
        rel = _relation([1, 1, 2], [10, 10, 20], ["db", "db", ""])
        ex = SQLExecutor(engine)
        for key in ex.group_counts(rel, ["age", "cat"]):
            assert type(key[0]) is int
            assert type(key[1]) is str

    def test_min_rows_gates_pushdown(self, engine):
        rel = _relation([1, 2], [10, 20], ["db", "ai"])
        gated = SQLExecutor(engine, min_rows=1000)
        assert gated.engine_for(rel) == "numpy"
        base = NUMPY_EXECUTOR.group_counts(rel, ["age", "cat"])
        assert gated.group_counts(rel, ["age", "cat"]) == base
        assert gated.stats["pushed"] == 0
        open_ex = SQLExecutor(engine, min_rows=2)
        assert open_ex.engine_for(rel) == engine
        assert open_ex.group_counts(rel, ["age", "cat"]) == base
        assert open_ex.stats["pushed"] == 1


@pytest.mark.parametrize("engine", ENGINES)
def test_group_by_combo_partitions(engine):
    """Phase II's partitioner agrees across engines on a real Phase-I
    assignment (combo decoding included)."""
    from repro.phase1.hybrid import run_phase1
    from repro.phase2.fk_assignment import partition_by_combo

    schema = Schema(
        [
            ColumnSpec("pid", Dtype.INT),
            ColumnSpec("age", Dtype.INT),
            ColumnSpec("cat", Dtype.STR),
        ],
        key="pid",
    )
    r1 = Relation(
        schema,
        {
            "pid": np.arange(8, dtype=np.int64),
            "age": np.asarray([25, 30, 25, 41, 30, 25, 60, 41], dtype=np.int64),
            "cat": np.asarray(
                ["db", "ai", "db", "", "ai", "os", "db", ""], dtype=object
            ),
        },
    )
    r2 = _parent([1, 2, 3], [5, 5, 5])
    ccs = [
        CardinalityConstraint(Predicate({"age": Interval(20, 35)}), 4),
    ]
    phase1 = run_phase1(r1, r2, ccs, r1_attrs=["age", "cat"])
    base = partition_by_combo(phase1.assignment, r1)
    ex = SQLExecutor(engine)
    pushed = partition_by_combo(phase1.assignment, r1, executor=ex)
    assert list(base.keys()) == list(pushed.keys())
    assert base == pushed
    for combo in base:
        assert all(type(v) is int for v in combo if isinstance(v, int))
    # Chunked child relation takes the chunk-aware numpy path; the SQL
    # path must agree with that too.
    chunked = r1.to_store(chunk_rows=3)
    assert partition_by_combo(phase1.assignment, chunked) == base
    assert partition_by_combo(phase1.assignment, chunked, executor=ex) == base
