"""Databases with FK edges and BFS traversal (Example 5.6's shape)."""

import pytest

from repro.errors import SchemaError
from repro.relational.database import Database
from repro.relational.relation import Relation


def _university() -> Database:
    db = Database()
    db.add_relation(
        "Students",
        Relation.from_columns({"sid": [1, 2], "Year": [1, 2]}, key="sid"),
    )
    db.add_relation(
        "Majors",
        Relation.from_columns({"mid": [1], "Name": ["CS"]}, key="mid"),
    )
    db.add_relation(
        "Courses",
        Relation.from_columns({"cid": [1], "Title": ["DB"]}, key="cid"),
    )
    db.add_relation(
        "Departments",
        Relation.from_columns({"did": [1], "Dept": ["Engineering"]}, key="did"),
    )
    db.add_foreign_key("Students", "major_id", "Majors")
    db.add_foreign_key("Students", "course_id", "Courses")
    db.add_foreign_key("Majors", "dept_id", "Departments")
    return db


class TestDatabase:
    def test_duplicate_relation_rejected(self):
        db = Database()
        db.add_relation("r", Relation.from_columns({"k": [1]}, key="k"))
        with pytest.raises(SchemaError):
            db.add_relation("r", Relation.from_columns({"k": [1]}, key="k"))

    def test_unknown_relation_rejected(self):
        with pytest.raises(SchemaError):
            Database().relation("missing")

    def test_replace_requires_existing(self):
        db = Database()
        with pytest.raises(SchemaError):
            db.replace_relation("r", Relation.from_columns({"k": [1]}))

    def test_fk_to_keyless_parent_rejected(self):
        db = Database()
        db.add_relation("a", Relation.from_columns({"x": [1]}, key="x"))
        db.add_relation("b", Relation.from_columns({"y": [1]}))
        with pytest.raises(SchemaError):
            db.add_foreign_key("a", "fk", "b")

    def test_fk_column_may_be_missing(self):
        """The to-be-imputed FK column need not exist yet."""
        db = _university()
        assert "major_id" not in db.relation("Students").schema


class TestBfs:
    def test_bfs_order_matches_example_5_6(self):
        db = _university()
        order = [(fk.child, fk.parent) for fk in db.bfs_edges("Students")]
        assert order == [
            ("Students", "Majors"),
            ("Students", "Courses"),
            ("Majors", "Departments"),
        ]

    def test_bfs_unknown_fact_table(self):
        with pytest.raises(SchemaError):
            _university().bfs_edges("missing")

    def test_bfs_with_depth_emits_child_depths(self):
        db = _university()
        pairs = [
            (depth, fk.child, fk.parent)
            for depth, fk in db.bfs_edges("Students", with_depth=True)
        ]
        assert pairs == [
            (0, "Students", "Majors"),
            (0, "Students", "Courses"),
            (1, "Majors", "Departments"),
        ]

    def test_bfs_edge_layers_group_by_depth(self):
        db = _university()
        layers = db.bfs_edge_layers("Students")
        assert [[fk.column for fk in layer] for layer in layers] == [
            ["major_id", "course_id"],
            ["dept_id"],
        ]
        # Flattening the layers reproduces the classic BFS order.
        assert [fk for layer in layers for fk in layer] == db.bfs_edges(
            "Students"
        )


class TestCopy:
    def test_copy_isolates_replacements(self):
        db = _university()
        clone = db.copy()
        clone.replace_relation(
            "Majors",
            Relation.from_columns({"mid": [9], "Name": ["Art"]}, key="mid"),
        )
        assert db.relation("Majors").column("mid").tolist() == [1]
        assert clone.relation("Majors").column("mid").tolist() == [9]
        assert clone.foreign_keys == db.foreign_keys

    def test_copy_isolates_new_foreign_keys(self):
        db = _university()
        clone = db.copy()
        clone.add_foreign_key("Courses", "dept_id", "Departments")
        assert len(db.foreign_keys) == 3
        assert len(clone.foreign_keys) == 4

    def test_identical_to(self):
        db = _university()
        clone = db.copy()
        assert db.identical_to(clone) and clone.identical_to(db)
        clone.replace_relation(
            "Majors",
            Relation.from_columns({"mid": [1], "Name": ["Art"]}, key="mid"),
        )
        assert not db.identical_to(clone)
        other = _university()
        other.add_foreign_key("Courses", "dept_id", "Departments")
        assert not db.identical_to(other)


class TestCompletedClosure:
    def test_closure_follows_only_completed_edges(self):
        db = _university()
        assert db.completed_closure("Students", set()) == {"Students"}
        assert db.completed_closure(
            "Students", {("Students", "major_id")}
        ) == {"Students", "Majors"}
        assert db.completed_closure(
            "Students",
            {("Students", "major_id"), ("Majors", "dept_id")},
        ) == {"Students", "Majors", "Departments"}
        # An edge completed elsewhere in the graph does not leak in.
        assert db.completed_closure(
            "Majors", {("Students", "major_id")}
        ) == {"Majors"}
