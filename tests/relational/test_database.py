"""Databases with FK edges and BFS traversal (Example 5.6's shape)."""

import pytest

from repro.errors import SchemaError
from repro.relational.database import Database
from repro.relational.relation import Relation


def _university() -> Database:
    db = Database()
    db.add_relation(
        "Students",
        Relation.from_columns({"sid": [1, 2], "Year": [1, 2]}, key="sid"),
    )
    db.add_relation(
        "Majors",
        Relation.from_columns({"mid": [1], "Name": ["CS"]}, key="mid"),
    )
    db.add_relation(
        "Courses",
        Relation.from_columns({"cid": [1], "Title": ["DB"]}, key="cid"),
    )
    db.add_relation(
        "Departments",
        Relation.from_columns({"did": [1], "Dept": ["Engineering"]}, key="did"),
    )
    db.add_foreign_key("Students", "major_id", "Majors")
    db.add_foreign_key("Students", "course_id", "Courses")
    db.add_foreign_key("Majors", "dept_id", "Departments")
    return db


class TestDatabase:
    def test_duplicate_relation_rejected(self):
        db = Database()
        db.add_relation("r", Relation.from_columns({"k": [1]}, key="k"))
        with pytest.raises(SchemaError):
            db.add_relation("r", Relation.from_columns({"k": [1]}, key="k"))

    def test_unknown_relation_rejected(self):
        with pytest.raises(SchemaError):
            Database().relation("missing")

    def test_replace_requires_existing(self):
        db = Database()
        with pytest.raises(SchemaError):
            db.replace_relation("r", Relation.from_columns({"k": [1]}))

    def test_fk_to_keyless_parent_rejected(self):
        db = Database()
        db.add_relation("a", Relation.from_columns({"x": [1]}, key="x"))
        db.add_relation("b", Relation.from_columns({"y": [1]}))
        with pytest.raises(SchemaError):
            db.add_foreign_key("a", "fk", "b")

    def test_fk_column_may_be_missing(self):
        """The to-be-imputed FK column need not exist yet."""
        db = _university()
        assert "major_id" not in db.relation("Students").schema


class TestBfs:
    def test_bfs_order_matches_example_5_6(self):
        db = _university()
        order = [(fk.child, fk.parent) for fk in db.bfs_edges("Students")]
        assert order == [
            ("Students", "Majors"),
            ("Students", "Courses"),
            ("Majors", "Departments"),
        ]

    def test_bfs_unknown_fact_table(self):
        with pytest.raises(SchemaError):
            _university().bfs_edges("missing")
