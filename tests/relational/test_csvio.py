"""CSV round-tripping."""

import pytest

from repro.errors import SchemaError
from repro.relational.csvio import read_csv, read_csv_infer, write_csv
from repro.relational.relation import Relation
from repro.relational.schema import ColumnSpec, Schema
from repro.relational.types import Dtype


@pytest.fixture
def relation():
    return Relation.from_columns(
        {"pid": [1, 2], "Age": [30, 40], "Rel": ["Owner", "Spouse"]},
        key="pid",
    )


def test_round_trip(tmp_path, relation):
    path = tmp_path / "persons.csv"
    write_csv(relation, path)
    loaded = read_csv(path, relation.schema)
    assert loaded.to_rows() == relation.to_rows()
    assert loaded.schema.dtype("Age") is Dtype.INT


def test_key_override(tmp_path, relation):
    path = tmp_path / "persons.csv"
    write_csv(relation, path)
    schema = Schema(list(relation.schema.columns))  # keyless copy
    loaded = read_csv(path, schema, key="pid")
    assert loaded.schema.key == "pid"


def test_header_mismatch_rejected(tmp_path, relation):
    path = tmp_path / "persons.csv"
    write_csv(relation, path)
    wrong = Schema([ColumnSpec("x", Dtype.INT)])
    with pytest.raises(SchemaError):
        read_csv(path, wrong)


def test_empty_file_rejected(tmp_path, relation):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(SchemaError):
        read_csv(path, relation.schema)


def test_ragged_rows_rejected_with_line_number(tmp_path):
    path = tmp_path / "ragged.csv"
    path.write_text("a,b,c\n1,2,3\n4,5\n7,8,9\n")
    with pytest.raises(SchemaError, match="ragged.csv:3"):
        read_csv_infer(path)
