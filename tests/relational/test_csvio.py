"""CSV round-tripping."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.relational.csvio import (
    infer_csv_schema,
    read_csv,
    read_csv_infer,
    read_csv_store,
    write_csv,
)
from repro.relational.relation import Relation
from repro.relational.schema import ColumnSpec, Schema
from repro.relational.types import Dtype


@pytest.fixture
def relation():
    return Relation.from_columns(
        {"pid": [1, 2], "Age": [30, 40], "Rel": ["Owner", "Spouse"]},
        key="pid",
    )


def test_round_trip(tmp_path, relation):
    path = tmp_path / "persons.csv"
    write_csv(relation, path)
    loaded = read_csv(path, relation.schema)
    assert loaded.to_rows() == relation.to_rows()
    assert loaded.schema.dtype("Age") is Dtype.INT


def test_key_override(tmp_path, relation):
    path = tmp_path / "persons.csv"
    write_csv(relation, path)
    schema = Schema(list(relation.schema.columns))  # keyless copy
    loaded = read_csv(path, schema, key="pid")
    assert loaded.schema.key == "pid"


def test_header_mismatch_rejected(tmp_path, relation):
    path = tmp_path / "persons.csv"
    write_csv(relation, path)
    wrong = Schema([ColumnSpec("x", Dtype.INT)])
    with pytest.raises(SchemaError):
        read_csv(path, wrong)


def test_empty_file_rejected(tmp_path, relation):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(SchemaError):
        read_csv(path, relation.schema)


def test_ragged_rows_rejected_with_line_number(tmp_path):
    path = tmp_path / "ragged.csv"
    path.write_text("a,b,c\n1,2,3\n4,5\n7,8,9\n")
    with pytest.raises(SchemaError, match="ragged.csv:3"):
        read_csv_infer(path)


def test_block_streaming_matches_single_pass(tmp_path, relation):
    path = tmp_path / "persons.csv"
    write_csv(relation, path)
    loaded = read_csv(path, relation.schema, block_rows=1)
    assert loaded.to_rows() == relation.to_rows()
    inferred = read_csv_infer(path, key="pid", block_rows=1)
    assert inferred.to_rows() == relation.to_rows()


def test_read_csv_store_streams_to_disk(tmp_path, relation):
    path = tmp_path / "persons.csv"
    write_csv(relation, path)
    disk = read_csv_store(
        path, relation.schema, chunk_rows=1,
        directory=tmp_path / "store", block_rows=1,
    )
    assert disk.is_chunked
    assert disk.to_rows() == relation.to_rows()
    assert (tmp_path / "store" / "manifest.json").exists()


INVALID_INT_LITERALS = ["1_000", " 3", "3 ", "+7", "00", "-0", "٣", "1e3"]


@pytest.mark.parametrize("literal", INVALID_INT_LITERALS)
def test_non_canonical_int_literal_rejected(tmp_path, literal):
    """Strict parsing: only canonical base-10 ASCII integers pass."""
    path = tmp_path / "strict.csv"
    path.write_text(f"pid,Age\n1,30\n2,{literal}\n")
    schema = Schema(
        [ColumnSpec("pid", Dtype.INT), ColumnSpec("Age", Dtype.INT)],
        key="pid",
    )
    with pytest.raises(SchemaError, match="strict.csv:3"):
        read_csv(path, schema)


@pytest.mark.parametrize("literal", INVALID_INT_LITERALS)
def test_inference_demotes_non_canonical_ints_to_str(tmp_path, literal):
    path = tmp_path / "strict.csv"
    path.write_text(f"pid,Age\n1,30\n2,{literal}\n")
    schema = infer_csv_schema(path, key="pid")
    assert schema.dtype("Age") is Dtype.STR
    assert schema.dtype("pid") is Dtype.INT


def test_canonical_negative_ints_accepted(tmp_path):
    path = tmp_path / "neg.csv"
    path.write_text("pid,Delta\n1,-30\n2,0\n3,-1\n")
    loaded = read_csv_infer(path, key="pid")
    assert loaded.schema.dtype("Delta") is Dtype.INT
    assert np.array_equal(loaded.column("Delta"), [-30, 0, -1])
