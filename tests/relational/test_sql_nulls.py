"""Empty-string vs NULL semantics at the SQL pushdown boundary.

Python-side relations have no NULLs: an "empty" string cell is the
ordinary value ``""``, a citizen of the column's dictionary like any
other.  The SQL executors must preserve that — relations are registered
as dictionary *codes* (integers), so ``""`` is just another code and SQL
``NULL`` never enters the picture.  These tests pin the contract:

* ``""`` groups, filters and joins exactly like any other category, and
  never collides with a ``NULL`` or with other falsy values;
* SQL kernels return ``""`` (not ``None``) wherever numpy does;
* the CSV round-trip (``write_csv`` → ``read_csv_store``) keeps ``""``
  intact, so a chunked store fed to a SQL executor still agrees with
  the in-RAM original.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.constraints.cc import CardinalityConstraint
from repro.constraints.dc import DenialConstraint, UnaryAtom
from repro.relational.csvio import read_csv_store, write_csv
from repro.relational.executor import NUMPY_EXECUTOR, duckdb_available
from repro.relational.predicate import Predicate, ValueSet
from repro.relational.relation import Relation
from repro.relational.schema import ColumnSpec, Schema
from repro.relational.sql_backend import SQLExecutor
from repro.relational.types import Dtype

ENGINES = [
    "sqlite",
    pytest.param(
        "duckdb",
        marks=pytest.mark.skipif(
            not duckdb_available(), reason="duckdb not installed"
        ),
    ),
]


def _relation():
    schema = Schema(
        [
            ColumnSpec("fk", Dtype.INT),
            ColumnSpec("name", Dtype.STR),
            ColumnSpec("age", Dtype.INT),
        ]
    )
    return Relation(
        schema,
        {
            "fk": np.asarray([1, 2, 1, 2, 1], dtype=np.int64),
            "name": np.asarray(["", "a", "", "b", "a"], dtype=object),
            "age": np.asarray([0, 10, 0, 20, 10], dtype=np.int64),
        },
    )


@pytest.mark.parametrize("engine", ENGINES)
class TestEmptyStringSemantics:
    def test_group_counts_keep_empty_string_distinct(self, engine):
        rel = _relation()
        ex = SQLExecutor(engine)
        counts = ex.group_counts(rel, ["name"])
        assert counts == NUMPY_EXECUTOR.group_counts(rel, ["name"])
        assert counts[("",)] == 2
        # The empty string comes back as exactly "" — not None, not a
        # SQL NULL rendered into something else.
        assert all(
            isinstance(key[0], str) and key[0] is not None for key in counts
        )
        assert ("",) in ex.distinct(rel, ["name"])

    def test_value_set_matches_empty_string_only(self, engine):
        rel = _relation()
        ex = SQLExecutor(engine)
        cc = CardinalityConstraint(
            Predicate({"name": ValueSet([""])}), 2
        )
        assert ex.count_ccs(rel, [cc]) == NUMPY_EXECUTOR.count_ccs(
            rel, [cc]
        ) == [2]

    def test_unary_dc_on_empty_string(self, engine):
        rel = _relation()
        ex = SQLExecutor(engine)
        dcs = [
            DenialConstraint(
                [
                    UnaryAtom(0, "name", "==", ""),
                    UnaryAtom(1, "name", "==", ""),
                ]
            )
        ]
        base = NUMPY_EXECUTOR.dc_error(rel, "fk", dcs)
        assert base > 0  # rows 0 and 2 share fk=1 and both have name=""
        assert ex.dc_error(rel, "fk", dcs) == base

    def test_csv_round_trip_preserves_empty_string(self, engine, tmp_path):
        rel = _relation()
        path = tmp_path / "rel.csv"
        write_csv(rel, path)
        loaded = read_csv_store(
            path, rel.schema, chunk_rows=2, directory=tmp_path / "store"
        )
        assert np.array_equal(loaded.column("name"), rel.column("name"))
        ex = SQLExecutor(engine)
        assert ex.group_counts(loaded, ["name", "age"]) == (
            NUMPY_EXECUTOR.group_counts(rel, ["name", "age"])
        )
        assert ex.stats["pushed"] > 0

    def test_empty_string_never_collides_with_zero(self, engine):
        # "" (STR) and 0 (INT) live in different columns; grouping over
        # both must not conflate them through any SQL coercion.
        rel = _relation()
        ex = SQLExecutor(engine)
        counts = ex.group_counts(rel, ["name", "age"])
        assert counts == NUMPY_EXECUTOR.group_counts(rel, ["name", "age"])
        assert counts[("", 0)] == 2
        assert ("a", 10) in counts
