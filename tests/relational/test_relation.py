"""The columnar Relation engine."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.relational.predicate import Interval, Predicate, ValueSet
from repro.relational.relation import Relation
from repro.relational.schema import ColumnSpec, Schema
from repro.relational.types import Dtype


@pytest.fixture
def persons():
    return Relation.from_columns(
        {
            "pid": [1, 2, 3, 4],
            "Age": [75, 25, 24, 10],
            "Rel": ["Owner", "Owner", "Spouse", "Child"],
        },
        key="pid",
    )


class TestConstruction:
    def test_from_columns_infers_dtypes(self, persons):
        assert persons.schema.dtype("Age") is Dtype.INT
        assert persons.schema.dtype("Rel") is Dtype.STR
        assert len(persons) == 4

    def test_from_rows(self):
        schema = Schema(
            [ColumnSpec("a", Dtype.INT), ColumnSpec("b", Dtype.STR)]
        )
        relation = Relation.from_rows(schema, [(1, "x"), (2, "y")])
        assert relation.to_rows() == [(1, "x"), (2, "y")]

    def test_from_dicts(self):
        schema = Schema([ColumnSpec("a", Dtype.INT)])
        relation = Relation.from_dicts(schema, [{"a": 3}, {"a": 4}])
        assert list(relation.column("a")) == [3, 4]

    def test_empty(self):
        schema = Schema([ColumnSpec("a", Dtype.INT)])
        assert len(Relation.empty(schema)) == 0

    def test_ragged_columns_rejected(self):
        schema = Schema([ColumnSpec("a", Dtype.INT), ColumnSpec("b", Dtype.INT)])
        with pytest.raises(SchemaError):
            Relation(schema, {"a": np.asarray([1]), "b": np.asarray([1, 2])})

    def test_missing_column_rejected(self):
        schema = Schema([ColumnSpec("a", Dtype.INT)])
        with pytest.raises(SchemaError):
            Relation(schema, {})


class TestAccess:
    def test_row_and_row_tuple(self, persons):
        assert persons.row(0) == {"pid": 1, "Age": 75, "Rel": "Owner"}
        assert persons.row_tuple(1, ["Rel", "Age"]) == ("Owner", 25)

    def test_iter_rows(self, persons):
        rows = list(persons.iter_rows())
        assert len(rows) == 4 and rows[3]["Rel"] == "Child"

    def test_unknown_column(self, persons):
        with pytest.raises(SchemaError):
            persons.column("missing")


class TestSelection:
    def test_select_and_count(self, persons):
        owners = Predicate({"Rel": ValueSet(["Owner"])})
        assert persons.count(owners) == 2
        assert len(persons.select(owners)) == 2

    def test_mask_requires_known_attrs(self, persons):
        with pytest.raises(SchemaError):
            persons.mask(Predicate({"missing": Interval(0, 1)}))

    def test_take(self, persons):
        taken = persons.take([2, 0])
        assert list(taken.column("pid")) == [3, 1]


class TestRelationalOps:
    def test_project(self, persons):
        projected = persons.project(["Age", "Rel"])
        assert projected.schema.names == ("Age", "Rel")
        assert projected.schema.key is None

    def test_group_counts_and_indices(self, persons):
        counts = persons.group_counts(["Rel"])
        assert counts[("Owner",)] == 2
        indices = persons.group_indices(["Rel"])
        assert sorted(indices[("Owner",)].tolist()) == [0, 1]

    def test_distinct(self, persons):
        assert (
            ("Child",) in persons.distinct(["Rel"])
            and len(persons.distinct(["Rel"])) == 3
        )

    def test_with_column(self, persons):
        extended = persons.with_column(
            ColumnSpec("hid", Dtype.INT), [1, 2, 3, 4]
        )
        assert "hid" in extended.schema
        with pytest.raises(SchemaError):
            extended.with_column(ColumnSpec("hid", Dtype.INT), [0] * 4)
        with pytest.raises(SchemaError):
            persons.with_column(ColumnSpec("x", Dtype.INT), [1])

    def test_drop_column(self, persons):
        dropped = persons.drop_column("Age")
        assert "Age" not in dropped.schema
        with pytest.raises(SchemaError):
            persons.drop_column("missing")

    def test_append_rows(self, persons):
        appended = persons.append_rows([(5, 40, "Sibling")])
        assert len(appended) == 5
        assert appended.row(4)["Rel"] == "Sibling"
        assert len(persons) == 4  # original untouched

    def test_append_nothing(self, persons):
        assert persons.append_rows([]) is persons

    def test_concat(self, persons):
        doubled = persons.concat(persons)
        assert len(doubled) == 8

    def test_concat_schema_mismatch(self, persons):
        other = persons.project(["Age", "Rel"])
        with pytest.raises(SchemaError):
            persons.concat(other)


class TestKeys:
    def test_key_index(self, persons):
        index = persons.key_index()
        assert index[2] == 1

    def test_duplicate_keys_rejected(self):
        relation = Relation.from_columns({"k": [1, 1]}, key="k")
        with pytest.raises(SchemaError):
            relation.key_index()

    def test_no_key_rejected(self):
        relation = Relation.from_columns({"a": [1]})
        with pytest.raises(SchemaError):
            relation.key_index()


class TestPretty:
    def test_pretty_renders_and_truncates(self, persons):
        text = persons.pretty(limit=2)
        assert "pid" in text and "more rows" in text


class TestCodes:
    def test_codes_reconstruct_column(self, persons):
        import numpy as np

        codes, uniques = persons.codes("Rel")
        assert np.array_equal(uniques[codes], persons.column("Rel"))

    def test_codes_cached(self, persons):
        first = persons.codes("Age")
        assert persons.codes("Age") is first

    def test_codes_unknown_column(self, persons):
        with pytest.raises(SchemaError):
            persons.codes("nope")

    def test_codes_empty_relation(self):
        relation = Relation.from_columns({"a": []})
        codes, uniques = relation.codes("a")
        assert len(codes) == 0 and len(uniques) == 0
