"""Column types and domains."""

import pytest

from repro.errors import SchemaError
from repro.relational.types import CatDomain, Dtype, IntDomain, infer_dtype


class TestIntDomain:
    def test_contains_bounds_inclusive(self):
        domain = IntDomain(0, 114)
        assert domain.contains(0)
        assert domain.contains(114)
        assert not domain.contains(-1)
        assert not domain.contains(115)

    def test_rejects_non_numeric(self):
        assert not IntDomain(0, 10).contains("five")

    def test_empty_domain_rejected(self):
        with pytest.raises(SchemaError):
            IntDomain(5, 4)

    def test_values_enumeration(self):
        assert list(IntDomain(3, 6).values()) == [3, 4, 5, 6]

    def test_unbounded_domain_cannot_enumerate(self):
        domain = IntDomain()
        assert not domain.is_finite
        with pytest.raises(SchemaError):
            domain.values()

    def test_dtype_is_int(self):
        assert IntDomain(0, 1).dtype is Dtype.INT


class TestCatDomain:
    def test_contains(self):
        domain = CatDomain(["Owner", "Spouse"])
        assert domain.contains("Owner")
        assert not domain.contains("Child")

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            CatDomain([])

    def test_values_sorted_deterministically(self):
        domain = CatDomain(["b", "a", "c"])
        assert domain.values() == ("a", "b", "c")

    def test_dtype_is_str(self):
        assert CatDomain(["x"]).dtype is Dtype.STR


class TestInferDtype:
    def test_integers(self):
        assert infer_dtype([1, 2, 3]) is Dtype.INT

    def test_strings(self):
        assert infer_dtype(["a", "b"]) is Dtype.STR

    def test_floats_are_categorical(self):
        assert infer_dtype([1.5]) is Dtype.STR

    def test_mixed_is_categorical(self):
        assert infer_dtype([1, "a"]) is Dtype.STR

    def test_bools_are_integers(self):
        assert infer_dtype([True, False]) is Dtype.INT

    def test_numpy_integers(self):
        import numpy as np

        assert infer_dtype(list(np.asarray([1, 2]))) is Dtype.INT


class TestNumpyScalars:
    """Regression: NumPy scalar column values must pass domain checks.

    ``isinstance(np.int64(5), (int, float))`` is False, so domain checks
    fed raw column values used to reject every value silently.
    """

    def test_int_domain_accepts_numpy_integers(self):
        import numpy as np

        domain = IntDomain(0, 114)
        assert domain.contains(np.int64(5))
        assert domain.contains(np.int32(114))
        assert not domain.contains(np.int64(115))
        assert domain.contains(np.float64(3.5))
        assert domain.contains(np.bool_(True))
        assert not domain.contains(np.str_("5"))

    def test_infer_dtype_numpy_families(self):
        import numpy as np

        assert infer_dtype([np.int64(1), np.int32(2)]) is Dtype.INT
        assert infer_dtype([np.bool_(True), 0]) is Dtype.INT
        assert infer_dtype([np.float64(1.0)]) is Dtype.STR
        assert infer_dtype([np.str_("a")]) is Dtype.STR
