"""Conditions and conjunctive predicates, including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import PredicateError
from repro.relational.predicate import (
    Interval,
    Predicate,
    TRUE_PREDICATE,
    ValueSet,
    condition_from_atom,
)
from repro.relational.types import CatDomain, IntDomain


class TestInterval:
    def test_matches_inclusive(self):
        interval = Interval(10, 20)
        assert interval.matches(10) and interval.matches(20)
        assert not interval.matches(9) and not interval.matches(21)

    def test_matches_numpy_scalar(self):
        assert Interval(0, 24).matches(np.int64(24))

    def test_non_numeric_never_matches(self):
        assert not Interval(0, 10).matches("Owner")

    def test_empty_interval_rejected(self):
        with pytest.raises(PredicateError):
            Interval(5, 4)

    def test_mask(self):
        values = np.asarray([1, 15, 30])
        assert Interval(10, 20).mask(values).tolist() == [False, True, False]

    def test_subset(self):
        assert Interval(12, 15).is_subset_of(Interval(10, 20))
        assert not Interval(5, 15).is_subset_of(Interval(10, 20))

    def test_disjoint(self):
        assert Interval(0, 9).is_disjoint_from(Interval(10, 20))
        assert not Interval(0, 10).is_disjoint_from(Interval(10, 20))

    def test_intersect(self):
        assert Interval(0, 15).intersect(Interval(10, 20)) == Interval(10, 15)
        assert Interval(0, 5).intersect(Interval(10, 20)) is None

    def test_cross_type_relations(self):
        interval, values = Interval(0, 5), ValueSet(["a"])
        assert interval.is_disjoint_from(values)
        assert not interval.is_subset_of(values)
        assert interval.intersect(values) is None


class TestValueSet:
    def test_matches(self):
        vs = ValueSet(["Owner", "Spouse"])
        assert vs.matches("Owner")
        assert not vs.matches("Child")

    def test_empty_rejected(self):
        with pytest.raises(PredicateError):
            ValueSet([])

    def test_mask_singleton_and_multi(self):
        values = np.asarray(["a", "b", "c"], dtype=object)
        assert ValueSet(["b"]).mask(values).tolist() == [False, True, False]
        assert ValueSet(["a", "c"]).mask(values).tolist() == [True, False, True]

    def test_subset_disjoint_intersect(self):
        small, big = ValueSet(["a"]), ValueSet(["a", "b"])
        assert small.is_subset_of(big)
        assert not big.is_subset_of(small)
        assert big.intersect(ValueSet(["b", "c"])) == ValueSet(["b"])
        assert ValueSet(["x"]).is_disjoint_from(ValueSet(["y"]))


class TestConditionFromAtom:
    def test_equality_int(self):
        assert condition_from_atom("==", 5) == Interval(5, 5)

    def test_open_comparisons_close_up(self):
        assert condition_from_atom(">", 24, IntDomain(0, 114)) == Interval(25, 114)
        assert condition_from_atom("<", 24, IntDomain(0, 114)) == Interval(0, 23)
        assert condition_from_atom(">=", 24, IntDomain(0, 114)) == Interval(24, 114)
        assert condition_from_atom("<=", 24, IntDomain(0, 114)) == Interval(0, 24)

    def test_string_equality(self):
        assert condition_from_atom("==", "Owner") == ValueSet(["Owner"])

    def test_string_not_equal_needs_domain(self):
        with pytest.raises(PredicateError):
            condition_from_atom("!=", "Owner")
        domain = CatDomain(["Owner", "Spouse", "Child"])
        assert condition_from_atom("!=", "Owner", domain) == ValueSet(
            ["Spouse", "Child"]
        )

    def test_int_not_equal_unsupported(self):
        with pytest.raises(PredicateError):
            condition_from_atom("!=", 5)

    def test_unknown_operator(self):
        with pytest.raises(PredicateError):
            condition_from_atom("~", 5)


class TestPredicate:
    def test_matches_row(self):
        p = Predicate({"Age": Interval(0, 24), "Rel": ValueSet(["Owner"])})
        assert p.matches_row({"Age": 20, "Rel": "Owner"})
        assert not p.matches_row({"Age": 30, "Rel": "Owner"})

    def test_trivial_predicate(self):
        assert TRUE_PREDICATE.is_trivial
        assert TRUE_PREDICATE.matches_row({"anything": 1})

    def test_mask_conjunction(self):
        columns = {
            "Age": np.asarray([10, 30, 20]),
            "Rel": np.asarray(["Owner", "Owner", "Child"], dtype=object),
        }
        p = Predicate({"Age": Interval(0, 24), "Rel": ValueSet(["Owner"])})
        assert p.mask(columns, 3).tolist() == [True, False, False]

    def test_restrict_and_drop(self):
        p = Predicate({"Age": Interval(0, 24), "Rel": ValueSet(["Owner"])})
        assert p.restrict(["Age"]).attributes == frozenset({"Age"})
        assert p.drop(["Age"]).attributes == frozenset({"Rel"})

    def test_conjoin_merges_and_detects_contradiction(self):
        a = Predicate({"Age": Interval(0, 24)})
        b = Predicate({"Age": Interval(20, 40), "Rel": ValueSet(["Owner"])})
        merged = a.conjoin(b)
        assert merged.condition("Age") == Interval(20, 24)
        assert merged.condition("Rel") == ValueSet(["Owner"])
        assert a.conjoin(Predicate({"Age": Interval(30, 40)})) is None

    def test_subset_definition_4_3(self):
        broad = Predicate({"Age": Interval(13, 64)})
        narrow = Predicate({"Age": Interval(18, 24), "Multi": Interval(0, 0)})
        assert narrow.is_subset_of(broad)
        assert not broad.is_subset_of(narrow)

    def test_everything_is_subset_of_true(self):
        p = Predicate({"Age": Interval(0, 1)})
        assert p.is_subset_of(TRUE_PREDICATE)

    def test_disjoint(self):
        a = Predicate({"Age": Interval(0, 9)})
        b = Predicate({"Age": Interval(10, 20)})
        assert a.is_disjoint_from(b)
        c = Predicate({"Rel": ValueSet(["Owner"])})
        assert not a.is_disjoint_from(c)  # different attributes overlap

    def test_equality_is_order_insensitive(self):
        a = Predicate({"X": Interval(0, 1), "Y": ValueSet(["v"])})
        b = Predicate({"Y": ValueSet(["v"]), "X": Interval(0, 1)})
        assert a == b and hash(a) == hash(b)


_intervals = st.tuples(
    st.integers(0, 100), st.integers(0, 100)
).map(lambda p: Interval(min(p), max(p)))


class TestIntervalProperties:
    @given(_intervals, _intervals)
    def test_subset_implies_membership_inheritance(self, a, b):
        if a.is_subset_of(b):
            for point in (a.lo, a.hi, (a.lo + a.hi) // 2):
                assert b.matches(point)

    @given(_intervals, _intervals)
    def test_disjoint_means_no_common_point(self, a, b):
        common = a.intersect(b)
        assert a.is_disjoint_from(b) == (common is None)
        if common is not None:
            assert a.matches(common.lo) and b.matches(common.lo)

    @given(_intervals, _intervals, st.integers(0, 100))
    def test_intersection_is_conjunction(self, a, b, x):
        common = a.intersect(b)
        both = a.matches(x) and b.matches(x)
        assert both == (common is not None and common.matches(x))

    @given(_intervals, _intervals)
    def test_relations_are_mutually_consistent(self, a, b):
        # subset and disjoint cannot hold together (intervals are nonempty)
        assert not (a.is_subset_of(b) and a.is_disjoint_from(b))
