"""Tour of the extensions beyond the paper's core algorithms.

1. **Disjunctive CCs** — the extension Section 2 hints at ("our
   algorithms can be extended to conditions that contain disjunction").
2. **Capacity constraints** — future-work item 1: bounding how many rows
   may share one foreign key (household size caps).
3. **DC discovery** — mining the Table 4-style constraints back out of a
   completed database.
4. **Distribution fidelity** — TVD between synthesized and ground-truth
   marginals, beyond the paper's CC/DC error measures.

Run:  python examples/extensions_tour.py
"""

from repro import CExtensionSolver, parse_cc
from repro.bench.fidelity import fidelity_report
from repro.core.metrics import dc_error
from repro.datagen import CensusConfig, cc_family, generate_census, good_dcs
from repro.extensions import (
    DiscoveryConfig,
    discover_fk_dcs,
    solve_with_capacity,
)


def main() -> None:
    data = generate_census(CensusConfig(n_households=250, n_areas=8, seed=13))
    dcs = good_dcs()
    areas = sorted({row["Area"] for row in data.housing.iter_rows()})

    # ------------------------------------------------------------------
    # 1. A disjunctive CC: children OR seniors, in either of two areas.
    # ------------------------------------------------------------------
    truth = data.ground_truth_join()
    dnf = parse_cc(
        f"|Age in [0, 12] & Area == '{areas[0]}' "
        f"or Age in [65, 114] & Area == '{areas[1]}'| = 0"
    )
    dnf = dnf.with_target(dnf.count_in(truth))
    result = CExtensionSolver().solve(
        data.persons_masked, data.housing,
        fk_column="hid", ccs=[dnf], dcs=dcs,
    )
    print(
        f"1. disjunctive CC target {dnf.target}: achieved "
        f"{dnf.count_in(result.join_view())} "
        f"(error {result.report.errors.per_cc[0]:.3f})"
    )

    # ------------------------------------------------------------------
    # 2. Capacity: no household may exceed 5 members.
    # ------------------------------------------------------------------
    capped = solve_with_capacity(
        data.persons_masked, data.housing,
        fk_column="hid", max_per_key=5, dcs=dcs,
    )
    usage = capped.usage()
    print(
        f"2. capacity 5: max household size {max(usage.values())}, "
        f"DC error {capped.errors.dc_error}, "
        f"{capped.num_new_r2_tuples} fresh households"
    )

    # ------------------------------------------------------------------
    # 3. Discovery: mine FK DCs back out of the ground truth.
    # ------------------------------------------------------------------
    mined = discover_fk_dcs(
        data.persons, "hid", DiscoveryConfig(min_support=3)
    )
    print(
        f"3. discovery: mined {len(mined)} DCs from the ground truth; "
        f"all hold (DC error {dc_error(data.persons, 'hid', mined)})"
    )
    for dc in mined[:3]:
        print(f"   e.g. {dc}")

    # ------------------------------------------------------------------
    # 4. Fidelity: constrained synthesis preserves joint marginals.
    # ------------------------------------------------------------------
    ccs = cc_family(data, "good", 80)
    constrained = CExtensionSolver().solve(
        data.persons_masked, data.housing,
        fk_column="hid", ccs=ccs, dcs=dcs,
    )
    report = fidelity_report(
        constrained.join_view(), truth, [["Rel"], ["Area"], ["Rel", "Area"]]
    )
    print("4. fidelity (TVD vs ground truth):")
    for attrs, tvd in report.items():
        print(f"   {'×'.join(attrs):<10} {tvd:.4f}")


if __name__ == "__main__":
    main()
