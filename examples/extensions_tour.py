"""Tour of the extensions beyond the paper's core algorithms.

1. **Disjunctive CCs** — the extension Section 2 hints at ("our
   algorithms can be extended to conditions that contain disjunction").
2. **Capacity constraints** — future-work item 1: bounding how many rows
   may share one foreign key (household size caps).  Declared on the
   spec's FK edge, which routes Phase II to the registered ``"capacity"``
   strategy — with its **soft** sibling (``"soft_capacity"``: overflow
   allowed but minimised and reported) and **quota coloring**
   (``"quota_coloring"``: per-combo caps) alongside.
3. **DC discovery** — mining the Table 4-style constraints back out of a
   completed database, and ``repro.discover_spec`` closing the loop into
   a runnable spec.
4. **Distribution fidelity** — TVD between synthesized and ground-truth
   marginals, beyond the paper's CC/DC error measures.
5. **SQL pushdown** — the pluggable kernel-executor layer: the same
   workload re-synthesized with ``executor = "sqlite"`` (relational
   kernels compiled to SQL against the embedded stdlib engine) is
   byte-identical to the numpy run, and each edge report records which
   engine actually ran.

Every solve goes through the one ``repro.synthesize`` front door.

Run:  python examples/extensions_tour.py
"""

import repro
from repro.bench.fidelity import fidelity_report
from repro.core.metrics import dc_error
from repro.datagen import CensusConfig, cc_family, generate_census, good_dcs
from repro.extensions import DiscoveryConfig, discover_fk_dcs
from repro.extensions.capacity import fk_usage_histogram
from repro.relational.join import fk_join


def census_spec(name, data, ccs=(), dcs=(), capacity=None,
                strategy=None, options=None):
    return (
        repro.SpecBuilder(name)
        .relation("persons", data=data.persons_masked, key="pid")
        .relation("housing", data=data.housing, key="hid")
        .edge("persons", "hid", "housing",
              ccs=list(ccs), dcs=list(dcs), capacity=capacity,
              strategy=strategy, options=options)
        .build()
    )


def main() -> None:
    data = generate_census(CensusConfig(n_households=250, n_areas=8, seed=13))
    dcs = good_dcs()
    areas = sorted({row["Area"] for row in data.housing.iter_rows()})

    # ------------------------------------------------------------------
    # 1. A disjunctive CC: children OR seniors, in either of two areas.
    # ------------------------------------------------------------------
    truth = data.ground_truth_join()
    dnf = repro.parse_cc(
        f"|Age in [0, 12] & Area == '{areas[0]}' "
        f"or Age in [65, 114] & Area == '{areas[1]}'| = 0"
    )
    dnf = dnf.with_target(dnf.count_in(truth))
    result = repro.synthesize(census_spec("dnf", data, ccs=[dnf], dcs=dcs))
    view = fk_join(result.relation("persons"), result.relation("housing"),
                   "hid")
    print(
        f"1. disjunctive CC target {dnf.target}: achieved "
        f"{dnf.count_in(view)} "
        f"(error {result.edges[0].errors.per_cc[0]:.3f})"
    )

    # ------------------------------------------------------------------
    # 2. Capacity: no household may exceed 5 members.  The edge-level
    #    cap dispatches Phase II to the "capacity" strategy.
    # ------------------------------------------------------------------
    capped = repro.synthesize(
        census_spec("capacity", data, dcs=dcs, capacity=5)
    )
    usage = fk_usage_histogram(capped.relation("persons"), "hid")
    print(
        f"2. capacity 5: max household size {max(usage.values())}, "
        f"DC error {capped.dc_error}, "
        f"{capped.edges[0].num_new_parent_tuples} fresh households "
        f"(strategy={capped.edges[0].strategy})"
    )

    # ------------------------------------------------------------------
    # 2b. Soft capacity: the cap becomes a penalised objective — no
    #     fresh households are minted; the realised overflow is reported.
    # ------------------------------------------------------------------
    soft = repro.synthesize(
        census_spec("soft", data, dcs=dcs,
                    strategy="soft_capacity", options={"max_per_key": 2})
    )
    print(
        f"2b. soft capacity 2: total overflow "
        f"{soft.edges[0].total_overflow}, "
        f"{soft.edges[0].num_new_parent_tuples} fresh households, "
        f"DC error {soft.dc_error}"
    )

    # ------------------------------------------------------------------
    # 2c. Quota coloring: per-combo caps — rented homes host at most 3.
    # ------------------------------------------------------------------
    tenure = sorted({str(v) for v in data.housing.column("Tenure")})[0]
    quota = repro.synthesize(
        census_spec(
            "quota", data, dcs=dcs, strategy="quota_coloring",
            options={"quotas": [{"match": {"Tenure": tenure}, "quota": 3}]},
        )
    )
    print(
        f"2c. quota 3 on Tenure == {tenure!r}: DC error {quota.dc_error}, "
        f"{quota.edges[0].num_new_parent_tuples} fresh households"
    )

    # ------------------------------------------------------------------
    # 3. Discovery: mine FK DCs back out of the ground truth, then close
    #    the loop — the mined constraints become a runnable spec.
    # ------------------------------------------------------------------
    mined = discover_fk_dcs(
        data.persons, "hid", DiscoveryConfig(min_support=3)
    )
    print(
        f"3. discovery: mined {len(mined)} DCs from the ground truth; "
        f"all hold (DC error {dc_error(data.persons, 'hid', mined)})"
    )
    for dc in mined[:3]:
        print(f"   e.g. {dc}")
    discovered = repro.discover_spec(
        data.persons, data.housing, fk_column="hid",
        config=DiscoveryConfig(min_support=3, slack=2),
    )
    resynthesized = repro.synthesize(discovered)
    print(
        f"   discover_spec: {len(discovered.edges[0].dcs)} mined DCs "
        f"inlined; re-synthesis DC error {resynthesized.dc_error}"
    )

    # ------------------------------------------------------------------
    # 4. Fidelity: constrained synthesis preserves joint marginals.
    # ------------------------------------------------------------------
    ccs = cc_family(data, "good", 80)
    constrained = repro.synthesize(
        census_spec("fidelity", data, ccs=ccs, dcs=dcs)
    )
    synthesized_view = fk_join(
        constrained.relation("persons"), constrained.relation("housing"),
        "hid",
    )
    report = fidelity_report(
        synthesized_view, truth, [["Rel"], ["Area"], ["Rel", "Area"]]
    )
    print("4. fidelity (TVD vs ground truth):")
    for attrs, tvd in report.items():
        print(f"   {'×'.join(attrs):<10} {tvd:.4f}")

    # ------------------------------------------------------------------
    # 5. SQL pushdown: same spec, kernels on the embedded SQL engine.
    # ------------------------------------------------------------------
    spec = census_spec("pushdown", data, ccs=ccs, dcs=dcs)
    pushed = repro.synthesize(spec.with_options(executor="sqlite"))
    identical = constrained.database.identical_to(pushed.database)
    print(
        f"5. SQL pushdown: executor={pushed.edges[0].executor}, output "
        f"identical to numpy: {identical}"
    )
    assert identical


if __name__ == "__main__":
    main()
