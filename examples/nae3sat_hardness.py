"""The NP-hardness reduction (Proposition 2.8), executable.

Builds the C-Extension instance for a 3-CNF formula and shows three
things:

1. a NAE-satisfying assignment converts into a valid completion
   (the forward direction of the proof);
2. the exact brute-force oracle agrees with a direct NAE-SAT solver;
3. the heuristic pipeline always terminates DC-clean, minting fresh
   R2 keys exactly when the two original keys cannot host a clause.

Run:  python examples/nae3sat_hardness.py
"""

import repro
from repro.core.metrics import dc_error
from repro.core.problem import brute_force_decision
from repro.datagen import (
    nae_satisfiable,
    random_formula,
    reduce_to_cextension,
)


def render(formula) -> str:
    parts = []
    for clause in formula:
        lits = " ∨ ".join(
            ("" if polarity else "¬") + var for var, polarity in clause
        )
        parts.append(f"({lits})")
    return " ∧ ".join(parts)


def main() -> None:
    for seed in range(4):
        formula = random_formula(n_vars=4, n_clauses=4, seed=seed)
        problem = reduce_to_cextension(formula)
        oracle = nae_satisfiable(formula)
        witness = brute_force_decision(problem)

        print(f"formula   : {render(formula)}")
        print(f"NAE-SAT   : {'satisfiable' if oracle else 'unsatisfiable'}")
        print(
            "C-Extension witness within R2's two keys: "
            + ("found" if witness is not None else "none")
        )
        assert (oracle is not None) == (witness is not None)

        # The heuristic pipeline never violates a DC; when the instance is
        # over-constrained it escapes by growing R2 instead.
        spec = (
            repro.SpecBuilder(f"nae3sat-{seed}")
            .relation("clauses", data=problem.r1)
            .relation("keys", data=problem.r2)
            .edge("clauses", "Chosen", "keys", dcs=list(problem.dcs))
            .build()
        )
        result = repro.synthesize(spec)
        clauses_hat = result.relation("clauses")
        assert dc_error(clauses_hat, "Chosen", list(problem.dcs)) == 0.0
        print(
            f"pipeline  : DC-clean completion, "
            f"{result.edges[0].num_new_parent_tuples} fresh R2 keys\n"
        )


if __name__ == "__main__":
    main()
