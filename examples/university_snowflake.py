"""Snowflake-schema synthesis: Example 5.6's university database.

Students reference Majors and Courses; Majors reference Departments.
All three FK columns start missing.  The whole workload — relations, FK
edges and per-edge constraints — lives in one declarative spec file,
``examples/specs/university.toml``; :func:`repro.synthesize` plans the
BFS edge order from the fact table and solves edge by edge, so step-2
constraints can span the already-completed Students ⋈ Majors join —
exactly the paper's example.

The same spec runs from the command line:

    repro-synth solve --spec examples/specs/university.toml --out out/

Run:  python examples/university_snowflake.py
"""

from pathlib import Path

import repro
from repro.relational.join import fk_join

SPEC_PATH = Path(__file__).parent / "specs" / "university.toml"


def main() -> None:
    spec = repro.load_spec(SPEC_PATH)
    result = repro.synthesize(spec)

    for edge in result.edges:
        print(
            f"completed {edge.child}.{edge.column} -> {edge.parent}: "
            f"CC mean error {edge.errors.mean_cc_error:.3f}, "
            f"DC error {edge.errors.dc_error:.3f}"
        )

    print("\nStudents (both FKs imputed):\n")
    print(result.relation("Students").pretty(8))
    print("\nMajors (dept_id imputed):\n")
    print(result.relation("Majors").pretty())

    # Verify the multi-hop constraint on the final database.
    view = fk_join(
        result.relation("Students"), result.relation("Majors"), "major_id"
    )
    view = fk_join(view, result.relation("Courses"), "course_id")
    cs_heavy = view.count(
        repro.parse_cc("|MName == 'CS' & Credits == 4| = 4").predicate
    )
    print(f"\nCS students in 4-credit courses: {cs_heavy} (target 4)")
    assert result.dc_error == 0.0


if __name__ == "__main__":
    main()
