"""Snowflake-schema synthesis: Example 5.6's university database.

Students reference Majors and Courses; Majors reference Departments.
All three FK columns start missing.  The synthesizer walks the FK graph
breadth-first from the fact table, so step-2 constraints can span the
already-completed Students ⋈ Majors join — exactly the paper's example.

Run:  python examples/university_snowflake.py
"""

from repro import (
    Database,
    EdgeConstraints,
    Relation,
    SnowflakeSynthesizer,
    parse_cc,
    parse_dc,
)
from repro.relational.join import fk_join


def build_database() -> Database:
    db = Database()
    db.add_relation(
        "Students",
        Relation.from_columns(
            {
                "sid": list(range(1, 21)),
                "Year": [1, 1, 1, 1, 2, 2, 2, 2, 3, 3,
                         3, 3, 4, 4, 4, 4, 1, 2, 3, 4],
            },
            key="sid",
        ),
    )
    db.add_relation(
        "Majors",
        Relation.from_columns(
            {"mid": [1, 2, 3], "MName": ["CS", "Math", "Bio"]}, key="mid"
        ),
    )
    db.add_relation(
        "Courses",
        Relation.from_columns(
            {"cid": [1, 2, 3], "Credits": [3, 4, 4]}, key="cid"
        ),
    )
    db.add_relation(
        "Departments",
        Relation.from_columns(
            {"did": [1, 2], "DName": ["Engineering", "Science"]}, key="did"
        ),
    )
    db.add_foreign_key("Students", "major_id", "Majors")
    db.add_foreign_key("Students", "course_id", "Courses")
    db.add_foreign_key("Majors", "dept_id", "Departments")
    return db


def main() -> None:
    db = build_database()
    constraints = {
        # Step 1: five freshmen major in CS.
        ("Students", "major_id"): EdgeConstraints(
            ccs=[parse_cc("|Year == 1 & MName == 'CS'| = 5")]
        ),
        # Step 2: spans Students ⋈ Majors ⋈ Courses — four CS students
        # take a 4-credit course.
        ("Students", "course_id"): EdgeConstraints(
            ccs=[parse_cc("|MName == 'CS' & Credits == 4| = 4")]
        ),
        # Step 3: CS and Math must not share a department.
        ("Majors", "dept_id"): EdgeConstraints(
            dcs=[parse_dc("not(t1.MName == 'CS' & t2.MName == 'Math')")]
        ),
    }

    result = SnowflakeSynthesizer().solve(db, "Students", constraints)
    for fk, step in result.steps:
        errors = step.report.errors
        print(
            f"completed {fk}: CC mean error {errors.mean_cc_error:.3f}, "
            f"DC error {errors.dc_error:.3f}"
        )

    print("\nStudents (both FKs imputed):\n")
    print(db.relation("Students").pretty(8))
    print("\nMajors (dept_id imputed):\n")
    print(db.relation("Majors").pretty())

    # Verify the multi-hop constraint on the final database.
    view = fk_join(db.relation("Students"), db.relation("Majors"), "major_id")
    view = fk_join(view, db.relation("Courses"), "course_id")
    cs_heavy = view.count(
        parse_cc("|MName == 'CS' & Credits == 4| = 4").predicate
    )
    print(f"\nCS students in 4-credit courses: {cs_heavy} (target 4)")


if __name__ == "__main__":
    main()
