"""Synthesis as a service: submit, watch, edit, re-submit.

Starts an in-process job server (the same stack `repro-synth serve`
runs), then walks the incremental re-synthesis loop on the university
snowflake:

1. submit ``examples/specs/university.toml`` — a cold run, every edge
   solves and checkpoints into the dependency-keyed edge cache;
2. submit the *identical* spec again — every edge is a cache hit, the
   job finishes without touching a solver;
3. edit one edge (the Majors → Departments quota) and submit — only the
   edited edge re-solves, the two untouched Students edges splice
   straight from the cache.

Run:  python examples/service_tour.py
"""

from pathlib import Path
from tempfile import TemporaryDirectory

from repro.service import JobManager, ServiceClient, ServiceServer

SPEC_PATH = Path(__file__).parent / "specs" / "university.toml"


def run_job(client: ServiceClient, text: str, name: str) -> dict:
    job_id = client.submit(text=text, name=name)
    status = client.wait(job_id, timeout=300)
    assert status["state"] == "done", status
    events, _ = client.events(job_id)
    solved = [e["edge"] for e in events if e["type"] == "edge_solved"]
    cached = [e["edge"] for e in events if e["type"] == "edge_cached"]
    print(f"{name}: {status['cache_hits']} hits, "
          f"{status['cache_misses']} misses")
    for edge in solved:
        print(f"  solved  {edge}")
    for edge in cached:
        print(f"  cached  {edge}")
    return status


def main() -> None:
    text = SPEC_PATH.read_text()
    with TemporaryDirectory(prefix="repro-service-tour-") as jobs_dir:
        manager = JobManager(jobs_dir, worker_budget=2)
        server = ServiceServer(manager, port=0).start()  # ephemeral port
        try:
            client = ServiceClient(server.address)
            print(f"server up at {server.address}, "
                  f"health: {client.health()['status']}\n")

            cold = run_job(client, text, "cold")
            assert cold["cache_misses"] == 3

            warm = run_job(client, text, "warm (unchanged)")
            assert warm["cache_hits"] == 3
            assert warm["cache_misses"] == 0

            # Edit one edge: each department now absorbs three majors.
            edited = text.replace("default_quota = 2", "default_quota = 3")
            assert edited != text
            incremental = run_job(client, edited, "edited quota")
            assert incremental["cache_hits"] == 2    # both Students edges
            assert incremental["cache_misses"] == 1  # Majors.dept_id only

            print("\nonly the edited edge's read-closure re-solved; "
                  "the rest spliced from the cache")
        finally:
            server.stop()
            manager.close()


if __name__ == "__main__":
    main()
