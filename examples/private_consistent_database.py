"""The paper's privacy use case: a database consistent with noisy counts.

Section 1 motivates C-Extension with differential privacy: answers to
count queries over joined views come back noisy, and analysts want a
*single concrete database* that is (a) consistent with those answers and
(b) valid under the schema's integrity constraints, so they can develop
against it before getting real-data access.

This example perturbs the true join counts with integer Laplace-style
noise (the privacy mechanism is simulated — the point is the
consistency machinery), synthesizes a database from the noisy targets,
and compares query answers on the synthetic database against the noisy
targets and the ground truth.

Run:  python examples/private_consistent_database.py
"""

import random

import repro
from repro.core.metrics import dc_error
from repro.datagen import CensusConfig, cc_family, generate_census, good_dcs
from repro.relational.join import fk_join


def add_noise(target: int, rng: random.Random, scale: float = 2.0) -> int:
    """Two-sided geometric noise (the discrete analogue of Laplace)."""
    u = rng.random() - 0.5
    magnitude = int(round(scale * abs(u) * 4))
    return max(0, target + (magnitude if u > 0 else -magnitude))


def main() -> None:
    rng = random.Random(7)
    data = generate_census(CensusConfig(n_households=300, n_areas=8, seed=7))
    dcs = good_dcs()

    true_ccs = cc_family(data, "good", num_ccs=80)
    noisy_ccs = [cc.with_target(add_noise(cc.target, rng)) for cc in true_ccs]
    perturbed = sum(
        1 for a, b in zip(true_ccs, noisy_ccs) if a.target != b.target
    )
    print(
        f"{len(noisy_ccs)} count queries; {perturbed} of them perturbed "
        "by the (simulated) privacy mechanism\n"
    )

    spec = (
        repro.SpecBuilder("private-census")
        .relation("persons", data=data.persons_masked, key="pid")
        .relation("housing", data=data.housing, key="hid")
        .edge("persons", "hid", "housing", ccs=noisy_ccs, dcs=dcs)
        .build()
    )
    result = repro.synthesize(spec)
    persons_hat = result.relation("persons")
    view = fk_join(persons_hat, result.relation("housing"), "hid")

    answered_vs_noisy = []
    answered_vs_truth = []
    for noisy, true in zip(noisy_ccs, true_ccs):
        answer = view.count(noisy.predicate)
        answered_vs_noisy.append(abs(answer - noisy.target))
        answered_vs_truth.append(abs(answer - true.target))

    exact = sum(1 for d in answered_vs_noisy if d == 0)
    print(
        f"consistency with the noisy answers : {exact}/{len(noisy_ccs)} "
        f"queries exact (max deviation {max(answered_vs_noisy)})"
    )
    print(
        "deviation from the hidden truth    : mean "
        f"{sum(answered_vs_truth) / len(answered_vs_truth):.2f} rows "
        "(bounded by the injected noise)"
    )
    print(
        "integrity constraints              : DC error "
        f"{dc_error(persons_hat, 'hid', dcs)} "
        f"({result.edges[0].num_new_parent_tuples} fresh households added)"
    )
    print(
        "\nAnalysts can now run arbitrary SQL-style queries against the\n"
        "synthesized Persons/Housing pair: every answer is consistent\n"
        "with one concrete database that satisfies the schema's DCs."
    )


if __name__ == "__main__":
    main()
