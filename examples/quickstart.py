"""Quickstart: the paper's running example (Figures 1-3), end to end.

Nine persons are missing their household id.  Four cardinality
constraints fix how many people of each kind live in Chicago and NYC,
and five denial constraints forbid impossible households (two owners,
implausible age gaps).

The workload is declared once as a :class:`repro.SynthesisSpec` — the
single front door over every pipeline in the library — and executed with
:func:`repro.synthesize`, which imputes ``hid`` so that every DC holds
exactly and every CC count is met.  The same spec could be saved with
``repro.save_spec(spec, "quickstart.toml")`` and run from the CLI via
``repro-synth solve --spec quickstart.toml``.

Run:  python examples/quickstart.py
"""

import repro


def main() -> None:
    spec = (
        repro.SpecBuilder("quickstart")
        # Figure 1 — Persons (hid missing) and Housing.
        .relation(
            "persons",
            columns={
                "pid": [1, 2, 3, 4, 5, 6, 7, 8, 9],
                "Age": [75, 75, 25, 25, 24, 10, 10, 30, 30],
                "Rel": ["Owner", "Owner", "Owner", "Owner", "Spouse",
                        "Child", "Child", "Owner", "Owner"],
                "Multi-ling": [0, 1, 0, 1, 0, 1, 1, 0, 1],
            },
            key="pid",
        )
        .relation(
            "housing",
            columns={
                "hid": [1, 2, 3, 4, 5, 6],
                "Area": ["Chicago", "Chicago", "Chicago", "Chicago",
                         "NYC", "NYC"],
            },
            key="hid",
        )
        # Figure 2 — CCs on Persons ⋈ Housing, FK DCs on Persons.
        .edge(
            "persons", "hid", "housing",
            ccs=[
                "|Rel == 'Owner' & Area == 'Chicago'| = 4",
                "|Rel == 'Owner' & Area == 'NYC'| = 2",
                "|Age <= 24 & Area == 'Chicago'| = 3",
                "|Multi-ling == 1 & Area == 'Chicago'| = 4",
            ],
            dcs=[
                "not(t1.Rel == 'Owner' & t2.Rel == 'Owner')",
                "not(t1.Rel == 'Owner' & t2.Rel == 'Spouse' "
                "& t2.Age < t1.Age - 50)",
                "not(t1.Rel == 'Owner' & t2.Rel == 'Spouse' "
                "& t2.Age > t1.Age + 50)",
                "not(t1.Rel == 'Owner' & t1.Multi-ling == 1 "
                "& t2.Rel == 'Child' & t2.Age < t1.Age - 50)",
                "not(t1.Rel == 'Owner' & t1.Multi-ling == 1 "
                "& t2.Rel == 'Child' & t2.Age > t1.Age - 12)",
            ],
        )
        .build()
    )

    result = repro.synthesize(spec)

    print("Persons with the imputed hid column (cf. Figure 3):\n")
    print(result.relation("persons").pretty())
    print("\nHousing (unchanged — no fresh tuples were needed):\n")
    print(result.relation("housing").pretty())

    report = result.edges[0]
    print("\nCC errors  :", [round(e, 3) for e in report.errors.per_cc])
    print("DC error   :", report.errors.dc_error)
    print(
        "Runtime    : phase I %.4fs, phase II %.4fs"
        % (report.phase1_seconds, report.phase2_seconds)
    )
    assert result.dc_error == 0.0 and result.max_cc_error == 0.0


if __name__ == "__main__":
    main()
