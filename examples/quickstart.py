"""Quickstart: the paper's running example (Figures 1-3), end to end.

Nine persons are missing their household id.  Four cardinality
constraints fix how many people of each kind live in Chicago and NYC,
and five denial constraints forbid impossible households (two owners,
implausible age gaps).  The solver imputes ``hid`` so that every DC holds
exactly and every CC count is met.

Run:  python examples/quickstart.py
"""

from repro import CExtensionSolver, Relation, parse_cc, parse_dc


def main() -> None:
    # Figure 1 — Persons (hid missing) and Housing.
    persons = Relation.from_columns(
        {
            "pid": [1, 2, 3, 4, 5, 6, 7, 8, 9],
            "Age": [75, 75, 25, 25, 24, 10, 10, 30, 30],
            "Rel": ["Owner", "Owner", "Owner", "Owner", "Spouse",
                    "Child", "Child", "Owner", "Owner"],
            "Multi-ling": [0, 1, 0, 1, 0, 1, 1, 0, 1],
        },
        key="pid",
    )
    housing = Relation.from_columns(
        {
            "hid": [1, 2, 3, 4, 5, 6],
            "Area": ["Chicago", "Chicago", "Chicago", "Chicago",
                     "NYC", "NYC"],
        },
        key="hid",
    )

    # Figure 2b — cardinality constraints on Persons ⋈ Housing.
    ccs = [
        parse_cc("|Rel == 'Owner' & Area == 'Chicago'| = 4", name="CC1"),
        parse_cc("|Rel == 'Owner' & Area == 'NYC'| = 2", name="CC2"),
        parse_cc("|Age <= 24 & Area == 'Chicago'| = 3", name="CC3"),
        parse_cc("|Multi-ling == 1 & Area == 'Chicago'| = 4", name="CC4"),
    ]

    # Figure 2a — foreign-key denial constraints on Persons.
    dcs = [
        parse_dc("not(t1.Rel == 'Owner' & t2.Rel == 'Owner')",
                 name="DC_O_O"),
        parse_dc("not(t1.Rel == 'Owner' & t2.Rel == 'Spouse' "
                 "& t2.Age < t1.Age - 50)", name="DC_O_S_low"),
        parse_dc("not(t1.Rel == 'Owner' & t2.Rel == 'Spouse' "
                 "& t2.Age > t1.Age + 50)", name="DC_O_S_up"),
        parse_dc("not(t1.Rel == 'Owner' & t1.Multi-ling == 1 "
                 "& t2.Rel == 'Child' & t2.Age < t1.Age - 50)",
                 name="DC_O_C_low"),
        parse_dc("not(t1.Rel == 'Owner' & t1.Multi-ling == 1 "
                 "& t2.Rel == 'Child' & t2.Age > t1.Age - 12)",
                 name="DC_O_C_up"),
    ]

    result = CExtensionSolver().solve(
        persons, housing, fk_column="hid", ccs=ccs, dcs=dcs
    )

    print("Persons with the imputed hid column (cf. Figure 3):\n")
    print(result.r1_hat.pretty())
    print("\nHousing (unchanged — no fresh tuples were needed):\n")
    print(result.r2_hat.pretty())

    errors = result.report.errors
    print("\nCC errors  :", [round(e, 3) for e in errors.per_cc])
    print("DC error   :", errors.dc_error)
    print(
        "Runtime    : phase I %.4fs, phase II %.4fs"
        % (result.report.phase1_seconds, result.report.phase2_seconds)
    )
    assert errors.dc_error == 0.0 and errors.max_cc_error == 0.0


if __name__ == "__main__":
    main()
