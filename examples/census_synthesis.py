"""Census-scale synthesis: the paper's evaluation workload in miniature.

Generates a Census-style database (Persons / Housing), derives the
Table 5 constraint families (good = intersection-free, bad =
intersecting) and the twelve Table 4 denial constraints, then runs the
hybrid pipeline through the unified ``repro.synthesize`` front door and
both Section 6 baselines, printing a Figure-8-style comparison.

Run:  python examples/census_synthesis.py
"""

import repro
from repro.baselines import baseline_solve
from repro.datagen import CensusConfig, all_dcs, cc_family, generate_census


def main() -> None:
    data = generate_census(
        CensusConfig(n_households=400, n_areas=10, seed=42)
    )
    dcs = all_dcs()
    print(
        f"Generated {len(data.persons)} persons over "
        f"{len(data.housing)} households "
        f"({len(data.persons) / len(data.housing):.2f} per household)\n"
    )

    for kind in ("good", "bad"):
        ccs = cc_family(data, kind, num_ccs=120)
        print(f"=== S_{kind}_CC ({len(ccs)} constraints) ===")

        spec = (
            repro.SpecBuilder(f"census-{kind}")
            .relation("persons", data=data.persons_masked, key="pid")
            .relation("housing", data=data.housing, key="hid")
            .edge("persons", "hid", "housing", ccs=ccs, dcs=dcs)
            .build()
        )
        hybrid = repro.synthesize(spec).edges[0]
        he = hybrid.errors
        print(
            f"  hybrid              median CC {he.median_cc_error:.3f}  "
            f"mean CC {he.mean_cc_error:.3f}  DC {he.dc_error:.3f}  "
            f"(+{hybrid.num_new_parent_tuples} fresh R2 tuples)"
        )

        for with_marginals in (False, True):
            base = baseline_solve(
                data.persons_masked, data.housing,
                fk_column="hid", ccs=ccs, dcs=dcs,
                with_marginals=with_marginals,
            )
            be = base.errors
            label = "baseline+marginals " if with_marginals else "baseline           "
            print(
                f"  {label} median CC {be.median_cc_error:.3f}  "
                f"mean CC {be.mean_cc_error:.3f}  DC {be.dc_error:.3f}"
            )
        print()

    print(
        "Shape check (paper Figure 8): the hybrid satisfies every DC\n"
        "exactly and every good CC exactly; the baselines leave CC error\n"
        "(plain) or large DC error (both)."
    )


if __name__ == "__main__":
    main()
